package core

import (
	"hpsockets/internal/hpsmon"
	"hpsockets/internal/sim"
	"hpsockets/internal/via"
)

// Zero-copy rendezvous — the push-model large-message path built on
// VIA RDMA Write, implementing the paper's future-work direction.
//
// For sends at or above SVConfig.RendezvousThreshold the sockets layer
// switches from eager chunking to a rendezvous: the sender announces
// the transfer (RendReq), the receiver grants its RDMA landing region
// (RendCTS), the sender registers the user buffer and RDMA-writes it
// directly — no sender-side copy and no eager credits — then posts a
// completion notice (RendDone) that VI FIFO ordering delivers after
// the data. Receiver-side flow control defers the grant while the
// connection's receive queue is above its high-water mark.
//
// Control-descriptor accounting: a connection has at most one
// un-granted RendReq, one outstanding grant and one RendDone in flight
// (sends are serialized by the caller), covered by the +3 control
// slack in SVConfig.ctrlSlack.

// realBit marks a rendezvous payload as real bytes in the 31-bit
// immediate value; the low 30 bits carry the piece size.
const (
	rendRealBit  = 1 << 30
	rendSizeMask = rendRealBit - 1
)

// rendDescTag marks one-shot RDMA descriptors in send completions so
// the pump does not recycle them into the eager pool.
type rendDescTag struct{}

// rendMax is the largest single rendezvous piece: one VIA transfer.
func (c *svConn) rendMax() int { return c.ep.pr.Config().MaxTransfer }

// rendHighWater is the buffered-byte level above which the receiver
// defers grants.
func (c *svConn) rendHighWater() int { return c.ep.cfg.Credits * c.ep.cfg.ChunkSize }

// sendRendezvous pushes one payload via RDMA-write pieces.
func (c *svConn) sendRendezvous(p *sim.Proc, data []byte, n int) error {
	cfg := c.ep.cfg
	node := c.node()
	offset := 0
	for offset < n {
		m := n - offset
		if m > c.rendMax() {
			m = c.rendMax()
		}
		val := m
		if data != nil {
			val |= rendRealBit
		}
		node.Overhead(p, cfg.ProcCost)
		node.Kernel().Trace("socketvia", "rend-req", int64(m), "")
		hpsmon.Count(node.Kernel(), "socketvia", "rend.pieces", 1)
		piece := hpsmon.Begin(p, "socketvia", "rendezvous", "")
		c.sendCtrl(p, svRendReq, val)
		ctsStart := node.Kernel().Now()
		for c.ctsArrived <= c.ctsConsumed && c.brokenErr == nil {
			timedOut := false
			if c.opTimeout > 0 {
				timedOut = !c.rendCond.WaitTimeout(p, c.opTimeout)
			} else {
				c.rendCond.Wait(p)
			}
			if timedOut {
				piece.End()
				return ErrTimeout
			}
		}
		hpsmon.Observe(node.Kernel(), "socketvia", "cts-wait", node.Kernel().Now()-ctsStart)
		if c.brokenErr != nil {
			piece.End()
			return c.brokenErr
		}
		c.ctsConsumed++
		// Register the user buffer: the zero-copy trade is pin cost
		// instead of copy cost.
		reg := c.ep.pr.RegisterMem(p, m)
		desc := &via.Desc{Region: reg, Len: m, Ctx: rendDescTag{}}
		if data != nil {
			desc.Data = data[offset : offset+m]
		}
		if err := c.vi.PostRDMAWrite(p, desc, c.rendHandle, 0); err != nil {
			piece.End()
			c.markBroken(ErrBroken)
			return ErrBroken
		}
		// VI FIFO ordering delivers this after the written data.
		c.sendCtrl(p, svRendDone, val)
		piece.End()
		offset += m
	}
	return nil
}

// handleRendReq runs in the pump when the peer announces a transfer.
func (c *svConn) handleRendReq(p *sim.Proc, val int) {
	if c.rendRegion == nil {
		c.rendRegion, c.rendLocalHandle = c.ep.pr.RegisterMemRDMA(p, c.rendMax())
	}
	c.rendMeta = append(c.rendMeta, val)
	if c.rcvAvail <= c.rendHighWater() {
		c.node().Kernel().Trace("socketvia", "rend-cts", 0, "")
		c.sendCtrl(p, svRendCTS, int(c.rendLocalHandle))
	} else {
		c.ctsOwed++
	}
}

// handleRendCTS runs in the pump when the peer grants its region.
func (c *svConn) handleRendCTS(val int) {
	c.rendHandle = uint32(val)
	c.ctsArrived++
	c.rendCond.Broadcast()
}

// handleRendDone runs in the pump when a pushed piece has landed.
func (c *svConn) handleRendDone() {
	if len(c.rendMeta) == 0 {
		// A done with no announcement means the request was lost on a
		// faulty wire while the done survived teardown races; the
		// stream is unrecoverable from here.
		c.node().Kernel().Trace("socketvia", "rend-orphan-done", 0, "")
		c.markBroken(ErrBroken)
		return
	}
	val := c.rendMeta[0]
	c.rendMeta = c.rendMeta[1:]
	size := val & rendSizeMask
	ch := rxChunk{size: size}
	if val&rendRealBit != 0 {
		// Hand the landed bytes to the reader. The Go-level copy is
		// for aliasing safety only (the landing region is reused); the
		// zero-copy model charges no protocol copy here.
		ch.data = append([]byte(nil), c.rendRegion.RDMABytes()[:size]...)
	}
	c.rcvChunks = append(c.rcvChunks, ch)
	c.rcvAvail += size
	c.rcvCond.Broadcast()
}

// maybeGrantRendezvous releases a deferred grant once the reader has
// drained below the high-water mark; called from Recv.
func (c *svConn) maybeGrantRendezvous(p *sim.Proc) {
	if c.ctsOwed > 0 && c.rcvAvail <= c.rendHighWater() && c.brokenErr == nil {
		c.ctsOwed--
		c.sendCtrl(p, svRendCTS, int(c.rendLocalHandle))
	}
}
