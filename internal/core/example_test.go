package core_test

import (
	"fmt"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// ExampleNewFabric shows the complete lifecycle of the sockets
// substrate: build a simulated testbed, attach a transport fabric, and
// exchange a message. Swapping KindSocketVIA for KindTCP changes
// nothing but the timings.
func ExampleNewFabric() {
	prof := core.CLANProfile()
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	cl.AddNode("client", cluster.DefaultConfig())
	cl.AddNode("server", cluster.DefaultConfig())
	fab := core.NewFabric(cl, core.KindSocketVIA, prof)

	ln := fab.Endpoint("server").Listen(80)
	k.Go("server", func(p *sim.Proc) {
		conn, _ := ln.Accept(p)
		buf := make([]byte, 16)
		n, _ := conn.Recv(p, buf)
		fmt.Printf("server received %q over %s\n", buf[:n], conn.Transport())
	})
	k.Go("client", func(p *sim.Proc) {
		conn, _ := fab.Endpoint("client").Dial(p, "server", 80)
		conn.Send(p, []byte("hello"))
		conn.Close(p)
	})
	k.RunAll()
	// Output:
	// server received "hello" over socketvia
}
