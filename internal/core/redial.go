package core

import (
	"fmt"
	"math/rand"

	"hpsockets/internal/hpsmon"
	"hpsockets/internal/sim"
)

// RetryPolicy shapes Redial's capped exponential backoff. Jitter
// decorrelates reconnect storms when many peers redial the same node;
// it draws from the explicitly seeded Rand so runs stay reproducible.
type RetryPolicy struct {
	// Attempts is the total number of dial attempts before giving up.
	Attempts int
	// BaseDelay is the pause before the second attempt; each further
	// attempt doubles it up to MaxDelay.
	BaseDelay sim.Time
	// MaxDelay caps the backoff (0 = uncapped).
	MaxDelay sim.Time
	// Jitter scales each pause by a uniform factor in
	// [1-Jitter/2, 1+Jitter/2]. Requires Rand when non-zero.
	Jitter float64
	// Rand is the seeded source for jitter.
	Rand *rand.Rand
}

// DefaultRetryPolicy returns a policy suited to the simulated fabric:
// eight attempts, 200 us base delay doubling to a 50 ms cap, 20%
// seeded jitter.
func DefaultRetryPolicy(seed int64) RetryPolicy {
	return RetryPolicy{
		Attempts:  8,
		BaseDelay: 200 * sim.Microsecond,
		MaxDelay:  50 * sim.Millisecond,
		Jitter:    0.2,
		Rand:      rand.New(rand.NewSource(seed)),
	}
}

// Redial dials remote/svc until an attempt succeeds, sleeping the
// policy's backoff between attempts. It returns the established
// connection, or the last dial error wrapped with attempt context
// once the budget is exhausted. A failed Dial returns no connection,
// so there is nothing to close between attempts; callers recovering a
// *broken* connection close it first, then Redial a replacement.
func Redial(p *sim.Proc, ep Endpoint, remote string, svc int, pol RetryPolicy) (Conn, error) {
	if pol.Attempts <= 0 {
		panic("core: redial policy needs at least one attempt")
	}
	delay := pol.BaseDelay
	var lastErr error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			d := delay
			if pol.Jitter > 0 && pol.Rand != nil {
				d = sim.Time(float64(d) * (1 + pol.Jitter*(pol.Rand.Float64()-0.5)))
			}
			ep.Node().Kernel().Trace("core", "redial-backoff", int64(attempt), remote)
			hpsmon.Count(ep.Node().Kernel(), "core", "redial.attempts", 1)
			p.Sleep(d)
			delay *= 2
			if pol.MaxDelay > 0 && delay > pol.MaxDelay {
				delay = pol.MaxDelay
			}
		}
		c, err := ep.Dial(p, remote, svc)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("core: redial %s svc %d: %d attempts exhausted: %w",
		remote, svc, pol.Attempts, lastErr)
}
