package core

import (
	"fmt"

	"hpsockets/internal/cluster"
	"hpsockets/internal/ktcp"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
	"hpsockets/internal/via"
)

// Kind selects a transport implementation.
type Kind int

const (
	// KindTCP is the kernel-based sockets path.
	KindTCP Kind = iota
	// KindSocketVIA is the user-level sockets layer over VIA.
	KindSocketVIA
)

func (k Kind) String() string {
	switch k {
	case KindTCP:
		return "tcp"
	case KindSocketVIA:
		return "socketvia"
	}
	return "unknown"
}

// Profile bundles every calibrated cost model of the testbed.
type Profile struct {
	Wire netsim.Config
	TCP  ktcp.Config
	VIA  via.Config
	SV   SVConfig
}

// CLANProfile returns the full testbed calibration: the cLAN switch
// fabric, the Linux 2.2 kernel TCP path, the cLAN VIA adapter and the
// SocketVIA layer.
func CLANProfile() Profile {
	return Profile{
		Wire: netsim.CLANConfig(),
		TCP:  ktcp.LinuxCLANConfig(),
		VIA:  via.CLANConfig(),
		SV:   DefaultSVConfig(),
	}
}

// RecoveryProfile is CLANProfile with the recovery machinery armed:
// kernel-path retransmission, a VIA connect timeout, and a SocketVIA
// dial timeout. Fault experiments and the fault-conformance suite use
// it; CLANProfile leaves every knob at zero, so headline figures run
// the exact fault-free code path.
func RecoveryProfile() Profile {
	prof := CLANProfile()
	prof.TCP.RTO = 5 * sim.Millisecond
	prof.TCP.MaxRetries = 8
	prof.VIA.ConnTimeout = 10 * sim.Millisecond
	prof.SV.DialTimeout = 20 * sim.Millisecond
	return prof
}

// Fabric instantiates one transport endpoint on every node of a
// cluster, the way the experiment harnesses bring up the testbed.
type Fabric struct {
	kind Kind
	eps  map[string]Endpoint
}

// NewFabric creates endpoints of the given kind on all current nodes.
func NewFabric(cl *cluster.Cluster, kind Kind, prof Profile) *Fabric {
	f := &Fabric{kind: kind, eps: make(map[string]Endpoint)}
	for _, node := range cl.Nodes() {
		switch kind {
		case KindTCP:
			f.eps[node.Name()] = NewTCPEndpoint(node, cl.Network(), prof.TCP)
		case KindSocketVIA:
			f.eps[node.Name()] = NewSocketVIAEndpoint(node, cl.Network(), prof.VIA, prof.SV)
		default:
			panic(fmt.Sprintf("core: unknown transport kind %d", kind))
		}
	}
	return f
}

// Kind reports the fabric's transport kind.
func (f *Fabric) Kind() Kind { return f.kind }

// Endpoint returns the endpoint on the named node.
func (f *Fabric) Endpoint(node string) Endpoint {
	ep, ok := f.eps[node]
	if !ok {
		panic(fmt.Sprintf("core: no endpoint on node %q", node))
	}
	return ep
}
