package core

import (
	"errors"
	"testing"

	"hpsockets/internal/cluster"
	"hpsockets/internal/fault"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// Fault-conformance battery: recovery behaviours every transport must
// share, run against both implementations over a recovery-armed
// profile with an installed fault plan.

// newFaultRig is newRig with RecoveryProfile and a fault plan.
func newFaultRig(n int, kind Kind, plan fault.Plan) *rig {
	prof := RecoveryProfile()
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	for i := 0; i < n; i++ {
		cl.AddNode(string(rune('a'+i)), cluster.DefaultConfig())
	}
	fault.Install(cl, plan)
	return &rig{k: k, cl: cl, f: NewFabric(cl, kind, prof)}
}

// TestFaultConformanceDeadlineFires: a Recv deadline on a silent peer
// expires as ErrTimeout, and the connection still closes cleanly —
// twice.
func TestFaultConformanceDeadlineFires(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		r := newFaultRig(2, kind, fault.Plan{})
		l := r.f.Endpoint("b").Listen(1)
		r.k.Go("server", func(p *sim.Proc) {
			c, err := l.Accept(p)
			if err != nil {
				t.Errorf("accept: %v", err)
				return
			}
			// Stay silent well past the client's deadline, then close.
			p.Sleep(10 * sim.Millisecond)
			c.Close(p)
		})
		r.k.Go("client", func(p *sim.Proc) {
			c, err := r.f.Endpoint("a").Dial(p, "b", 1)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			c.SetTimeout(1 * sim.Millisecond)
			start := p.Now()
			buf := make([]byte, 16)
			if _, err := c.Recv(p, buf); !errors.Is(err, ErrTimeout) {
				t.Errorf("recv on silent peer = %v, want ErrTimeout", err)
			}
			if waited := p.Now() - start; waited < 1*sim.Millisecond || waited > 2*sim.Millisecond {
				t.Errorf("deadline fired after %v, want ~1ms", waited)
			}
			if err := c.Close(p); err != nil {
				t.Errorf("first close: %v", err)
			}
			if err := c.Close(p); err != nil {
				t.Errorf("second close: %v", err)
			}
		})
		r.k.RunAll()
	})
}

// TestFaultConformanceRedialAfterPartition: dialing into a partition
// fails or stalls, but Redial's backoff outlives the window and the
// replacement connection works.
func TestFaultConformanceRedialAfterPartition(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		const heal = 5 * sim.Millisecond
		r := newFaultRig(2, kind, fault.Plan{
			Seed:       5,
			Partitions: []fault.Partition{{A: "a", B: "b", From: 0, To: heal}},
		})
		l := r.f.Endpoint("b").Listen(1)
		r.k.Go("server", func(p *sim.Proc) {
			c, err := l.Accept(p)
			if err != nil {
				t.Errorf("accept: %v", err)
				return
			}
			buf := make([]byte, 4)
			if _, err := c.RecvFull(p, buf); err != nil {
				t.Errorf("recv after heal: %v", err)
				return
			}
			c.Send(p, buf) // echo
			c.Close(p)
		})
		r.k.Go("client", func(p *sim.Proc) {
			pol := DefaultRetryPolicy(99)
			c, err := Redial(p, r.f.Endpoint("a"), "b", 1, pol)
			if err != nil {
				t.Errorf("redial across partition: %v", err)
				return
			}
			if p.Now() < heal {
				t.Errorf("connected at %v, inside the partition window", p.Now())
			}
			if err := c.Send(p, []byte("ping")); err != nil {
				t.Errorf("send after redial: %v", err)
			}
			buf := make([]byte, 4)
			if _, err := c.RecvFull(p, buf); err != nil || string(buf) != "ping" {
				t.Errorf("echo after redial = %q, %v", buf, err)
			}
			c.Close(p)
		})
		r.k.RunAll()
	})
}

// TestFaultConformanceDoubleCloseSafe: Close twice on both ends, in
// either order, with no panic and no error.
func TestFaultConformanceDoubleCloseSafe(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		r := newRig(2, kind)
		r.pair(t,
			func(p *sim.Proc, c Conn) {
				c.Send(p, []byte("x"))
				if err := c.Close(p); err != nil {
					t.Errorf("close 1: %v", err)
				}
				if err := c.Close(p); err != nil {
					t.Errorf("close 2: %v", err)
				}
			},
			func(p *sim.Proc, c Conn) {
				buf := make([]byte, 1)
				c.RecvFull(p, buf)
				if err := c.Close(p); err != nil {
					t.Errorf("close 1: %v", err)
				}
				if err := c.Close(p); err != nil {
					t.Errorf("close 2: %v", err)
				}
			},
		)
	})
}

// TestNetsimAccountingUnderLoss: every frame a port sent is either
// received, dropped, or corrupted-and-delivered somewhere — the
// switch's books balance under injected loss.
func TestNetsimAccountingUnderLoss(t *testing.T) {
	r := newFaultRig(2, KindTCP, fault.Plan{
		Seed:  21,
		Links: []fault.LinkFault{{DropProb: 5e-3}},
	})
	var sendErr error
	r.pair(t,
		func(p *sim.Proc, c Conn) {
			c.SetTimeout(50 * sim.Millisecond)
			sendErr = c.SendSize(p, 500_000)
			c.Close(p)
		},
		func(p *sim.Proc, c Conn) {
			buf := make([]byte, 8192)
			for {
				if _, err := c.Recv(p, buf); err != nil {
					return
				}
			}
		},
	)
	if sendErr != nil {
		t.Fatalf("send under loss: %v", sendErr)
	}
	pa := r.cl.Node("a").Port()
	pb := r.cl.Node("b").Port()
	sent := pa.Sent() + pb.Sent()
	accounted := pa.Received() + pb.Received() + pa.Dropped() + pb.Dropped()
	if sent != accounted {
		t.Fatalf("accounting: sent %d != received+dropped %d", sent, accounted)
	}
	if pa.Dropped()+pb.Dropped() == 0 {
		t.Fatal("no frames dropped at 5e-3 over a 500 KB transfer")
	}
}
