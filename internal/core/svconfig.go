package core

import "hpsockets/internal/sim"

// SVConfig carries the SocketVIA protocol parameters and user-level
// costs. The defaults reproduce the substrate of the paper; the
// ablation benches sweep ChunkSize and Credits.
type SVConfig struct {
	// ChunkSize is the eager buffer size: sends larger than one chunk
	// are pipelined through the pool chunk by chunk.
	ChunkSize int
	// Credits is the number of data receive descriptors pre-posted per
	// connection; it bounds un-consumed data in flight (the SocketVIA
	// equivalent of the TCP advertised window).
	Credits int
	// CreditBatch is how many consumed descriptors accumulate before a
	// credit-update message returns them to the sender.
	CreditBatch int
	// CopyPerByte is the memcpy cost (ns/byte) between user buffers
	// and the registered pools, charged on the CPU of the copying side.
	CopyPerByte float64
	// ProcCost is the per-call bookkeeping cost of the sockets layer.
	ProcCost sim.Time
	// ReaderWakeup is charged when a blocked Recv or credit-starved
	// Send is woken by the progress process.
	ReaderWakeup sim.Time
	// RendezvousThreshold switches sends at or above this size to the
	// zero-copy RDMA rendezvous path (0 disables it). This implements
	// the paper's future-work push model; see rendezvous.go.
	RendezvousThreshold int
	// DialTimeout bounds how long Dial waits for the acceptor's ready
	// message after VIA connection setup; zero (the default) waits
	// forever, exactly as the fault-free model always has.
	DialTimeout sim.Time
}

// DefaultSVConfig returns the calibrated SocketVIA layer: ~9.5 us
// small-message latency and ~763 Mbps peak bandwidth over the CLAN
// VIA profile, matching the paper's micro-benchmarks.
func DefaultSVConfig() SVConfig {
	return SVConfig{
		ChunkSize:    8 * 1024,
		Credits:      16,
		CreditBatch:  4,
		CopyPerByte:  2.0,
		ProcCost:     250 * sim.Nanosecond,
		ReaderWakeup: 800 * sim.Nanosecond,
	}
}

// ctrlSlack is the number of extra receive descriptors posted beyond
// the data credits. Control messages (credit updates, FIN, rendezvous
// control) consume descriptors from the same FIFO pool as data; their
// count in flight is structurally bounded by
// ceil(Credits/CreditBatch) updates, one FIN, one final flush, and at
// most three rendezvous control messages (one un-granted request, one
// grant, one done — sends are serialized), which this slack covers.
// The progress process reposts a control-consumed descriptor
// immediately, so the bound never grows.
func (c SVConfig) ctrlSlack() int {
	return (c.Credits+c.CreditBatch-1)/c.CreditBatch + 5
}

// validate panics on configurations that would violate the flow
// control invariants.
func (c SVConfig) validate() {
	if c.ChunkSize <= 0 || c.Credits <= 0 || c.CreditBatch <= 0 {
		panic("core: invalid SocketVIA config")
	}
	if c.CreditBatch > c.Credits {
		panic("core: CreditBatch exceeds Credits")
	}
}
