package core

import (
	"testing"

	"hpsockets/internal/sim"
)

// measureLatency returns one-way latency via ping-pong over the given
// transport.
func measureLatency(kind Kind, size, iters int) sim.Time {
	r := newRig(2, kind)
	l := r.f.Endpoint("b").Listen(1)
	var oneWay sim.Time
	r.k.Go("srv", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, size)
		for i := 0; i < iters; i++ {
			c.RecvFull(p, buf)
			c.SendSize(p, size)
		}
	})
	r.k.Go("cli", func(p *sim.Proc) {
		c, _ := r.f.Endpoint("a").Dial(p, "b", 1)
		p.Sleep(sim.Millisecond)
		buf := make([]byte, size)
		start := p.Now()
		for i := 0; i < iters; i++ {
			c.SendSize(p, size)
			c.RecvFull(p, buf)
		}
		oneWay = (p.Now() - start) / sim.Time(2*iters)
	})
	r.k.RunAll()
	return oneWay
}

// measureBandwidth returns streaming Mbps over the given transport.
func measureBandwidth(kind Kind, size, count int) float64 {
	r := newRig(2, kind)
	l := r.f.Endpoint("b").Listen(1)
	var mbps float64
	r.k.Go("srv", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, 64*1024)
		total := 0
		start := sim.Time(-1)
		for {
			n, err := c.Recv(p, buf)
			if start < 0 && n > 0 {
				start = p.Now()
			}
			total += n
			if err != nil {
				break
			}
		}
		mbps = sim.BitsPerSec(int64(total), p.Now()-start)
	})
	r.k.Go("cli", func(p *sim.Proc) {
		c, _ := r.f.Endpoint("a").Dial(p, "b", 1)
		p.Sleep(sim.Millisecond)
		for i := 0; i < count; i++ {
			c.SendSize(p, size)
		}
		c.Close(p)
	})
	r.k.RunAll()
	return mbps
}

func TestCalibrationSocketVIALatency(t *testing.T) {
	got := measureLatency(KindSocketVIA, 4, 100)
	// Paper: SocketVIA gives a latency as low as 9.5 us.
	if got < 9*sim.Microsecond || got > 10500*sim.Nanosecond {
		t.Fatalf("SocketVIA 4-byte latency = %v, want ~9.5 us", got)
	}
}

func TestCalibrationSocketVIABandwidth(t *testing.T) {
	got := measureBandwidth(KindSocketVIA, 64*1024, 200)
	// Paper: SocketVIA peaks at 763 Mbps.
	if got < 735 || got > 790 {
		t.Fatalf("SocketVIA 64K bandwidth = %.1f Mbps, want ~763", got)
	}
}

func TestCalibrationLatencyRatioVsTCP(t *testing.T) {
	sv := measureLatency(KindSocketVIA, 4, 50)
	tcp := measureLatency(KindTCP, 4, 50)
	ratio := float64(tcp) / float64(sv)
	// Paper: "nearly a factor of five improvement".
	if ratio < 4.2 || ratio > 5.8 {
		t.Fatalf("TCP/SocketVIA latency ratio = %.2f (tcp=%v sv=%v), want ~5", ratio, tcp, sv)
	}
}

func TestCalibrationBandwidthImprovementVsTCP(t *testing.T) {
	sv := measureBandwidth(KindSocketVIA, 64*1024, 100)
	tcp := measureBandwidth(KindTCP, 64*1024, 100)
	imp := sv / tcp
	// Paper: "an improvement of nearly 50%".
	if imp < 1.35 || imp > 1.65 {
		t.Fatalf("bandwidth improvement = %.2fx (sv=%.0f tcp=%.0f), want ~1.5x", imp, sv, tcp)
	}
}

func TestCalibrationBandwidthAtSmallSizesFavorsSocketVIA(t *testing.T) {
	// Figure 2(a): the high performance substrate reaches a given
	// bandwidth at a much smaller message size. At 2 KB messages,
	// SocketVIA should already beat TCP's peak bandwidth.
	sv2k := measureBandwidth(KindSocketVIA, 2048, 500)
	tcpPeak := measureBandwidth(KindTCP, 64*1024, 100)
	if sv2k <= tcpPeak {
		t.Fatalf("SocketVIA at 2K = %.0f Mbps, TCP peak = %.0f Mbps; want crossover", sv2k, tcpPeak)
	}
}
