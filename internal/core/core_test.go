package core

import (
	"io"
	"testing"

	"hpsockets/internal/cluster"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// rig is an n-node cluster with one fabric.
type rig struct {
	k  *sim.Kernel
	cl *cluster.Cluster
	f  *Fabric
}

func newRig(n int, kind Kind) *rig {
	prof := CLANProfile()
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	for i := 0; i < n; i++ {
		cl.AddNode(string(rune('a'+i)), cluster.DefaultConfig())
	}
	return &rig{k: k, cl: cl, f: NewFabric(cl, kind, prof)}
}

// pair runs a client on node a and server on node b over service 1.
func (r *rig) pair(t *testing.T, client, server func(p *sim.Proc, c Conn)) {
	t.Helper()
	l := r.f.Endpoint("b").Listen(1)
	r.k.Go("server", func(p *sim.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		server(p, c)
	})
	r.k.Go("client", func(p *sim.Proc) {
		c, err := r.f.Endpoint("a").Dial(p, "b", 1)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		client(p, c)
	})
	r.k.RunAll()
}

// kinds runs a subtest against both transports.
func kinds(t *testing.T, fn func(t *testing.T, kind Kind)) {
	t.Helper()
	for _, kind := range []Kind{KindTCP, KindSocketVIA} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) { fn(t, kind) })
	}
}

func TestConnDeliversBytesInOrder(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		r := newRig(2, kind)
		msg := make([]byte, 50_000)
		for i := range msg {
			msg[i] = byte(i * 13)
		}
		var got []byte
		r.pair(t,
			func(p *sim.Proc, c Conn) {
				if err := c.Send(p, msg); err != nil {
					t.Errorf("send: %v", err)
				}
				c.Close(p)
			},
			func(p *sim.Proc, c Conn) {
				buf := make([]byte, len(msg))
				if _, err := c.RecvFull(p, buf); err != nil {
					t.Errorf("recv: %v", err)
				}
				got = buf
			},
		)
		for i := range msg {
			if got[i] != msg[i] {
				t.Fatalf("corrupted at %d: %d != %d", i, got[i], msg[i])
			}
		}
	})
}

func TestConnEOFAfterClose(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		r := newRig(2, kind)
		var finalErr error
		r.pair(t,
			func(p *sim.Proc, c Conn) {
				c.Send(p, []byte("last words"))
				c.Close(p)
			},
			func(p *sim.Proc, c Conn) {
				buf := make([]byte, 10)
				if _, err := c.RecvFull(p, buf); err != nil {
					t.Errorf("recv body: %v", err)
				}
				_, finalErr = c.Recv(p, buf)
			},
		)
		if finalErr != io.EOF {
			t.Fatalf("err = %v, want EOF", finalErr)
		}
	})
}

func TestConnSendAfterCloseFails(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		r := newRig(2, kind)
		r.pair(t,
			func(p *sim.Proc, c Conn) {
				c.Close(p)
				if err := c.Send(p, []byte("x")); err == nil {
					t.Error("send after close succeeded")
				}
			},
			func(p *sim.Proc, c Conn) {
				buf := make([]byte, 1)
				c.Recv(p, buf)
			},
		)
	})
}

func TestConnMixedRealAndSizeOnlyFraming(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		r := newRig(2, kind)
		var head, tail [6]byte
		r.pair(t,
			func(p *sim.Proc, c Conn) {
				c.Send(p, []byte("HEADER"))
				c.SendSize(p, 100_000)
				c.Send(p, []byte("FOOTER"))
				c.Close(p)
			},
			func(p *sim.Proc, c Conn) {
				c.RecvFull(p, head[:])
				skip := make([]byte, 100_000)
				c.RecvFull(p, skip)
				c.RecvFull(p, tail[:])
			},
		)
		if string(head[:]) != "HEADER" || string(tail[:]) != "FOOTER" {
			t.Fatalf("framing lost: %q %q", head, tail)
		}
	})
}

func TestConnBidirectionalTraffic(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		r := newRig(2, kind)
		const rounds = 30
		r.pair(t,
			func(p *sim.Proc, c Conn) {
				buf := make([]byte, 4)
				for i := 0; i < rounds; i++ {
					c.Send(p, []byte{byte(i), 0, 0, 0})
					if _, err := c.RecvFull(p, buf); err != nil {
						t.Errorf("client recv: %v", err)
						return
					}
					if buf[0] != byte(i)+1 {
						t.Errorf("round %d: echo %d", i, buf[0])
						return
					}
				}
			},
			func(p *sim.Proc, c Conn) {
				buf := make([]byte, 4)
				for i := 0; i < rounds; i++ {
					if _, err := c.RecvFull(p, buf); err != nil {
						t.Errorf("server recv: %v", err)
						return
					}
					buf[0]++
					out := append([]byte(nil), buf...)
					c.Send(p, out)
				}
			},
		)
	})
}

func TestConnSlowConsumerBackpressure(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		r := newRig(2, kind)
		const total = 2 << 20
		var sendDone, readStart sim.Time
		r.pair(t,
			func(p *sim.Proc, c Conn) {
				c.SendSize(p, total)
				sendDone = p.Now()
				c.Close(p)
			},
			func(p *sim.Proc, c Conn) {
				p.Sleep(100 * sim.Millisecond)
				readStart = p.Now()
				buf := make([]byte, 64*1024)
				for {
					if _, err := c.Recv(p, buf); err != nil {
						return
					}
				}
			},
		)
		if sendDone < readStart {
			t.Fatalf("%s: sender finished at %v before reader started at %v", kind, sendDone, readStart)
		}
	})
}

func TestConnManyConnectionsConverge(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		r := newRig(4, kind)
		l := r.f.Endpoint("d").Listen(9)
		const per = 200_000
		var total int
		done := sim.NewBarrier(r.k, 3)
		for i := 0; i < 3; i++ {
			name := string(rune('a' + i))
			r.k.Go("cli-"+name, func(p *sim.Proc) {
				c, err := r.f.Endpoint(name).Dial(p, "d", 9)
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				c.SendSize(p, per)
				c.Close(p)
			})
			r.k.Go("srv", func(p *sim.Proc) {
				c, err := l.Accept(p)
				if err != nil {
					t.Errorf("accept: %v", err)
					return
				}
				buf := make([]byte, 32*1024)
				for {
					n, err := c.Recv(p, buf)
					total += n
					if err != nil {
						done.Arrive()
						return
					}
				}
			})
		}
		r.k.RunAll()
		if total != 3*per {
			t.Fatalf("received %d, want %d", total, 3*per)
		}
	})
}

func TestFabricDeterministicReplay(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		run := func() sim.Time {
			r := newRig(3, kind)
			l := r.f.Endpoint("c").Listen(5)
			for i := 0; i < 2; i++ {
				name := string(rune('a' + i))
				r.k.Go("cli", func(p *sim.Proc) {
					c, _ := r.f.Endpoint(name).Dial(p, "c", 5)
					for j := 0; j < 20; j++ {
						c.SendSize(p, 10_000)
					}
					c.Close(p)
				})
				r.k.Go("srv", func(p *sim.Proc) {
					c, _ := l.Accept(p)
					buf := make([]byte, 8192)
					for {
						if _, err := c.Recv(p, buf); err != nil {
							return
						}
					}
				})
			}
			return r.k.RunAll()
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("replay diverged: %v vs %v", a, b)
		}
	})
}

func TestSocketVIAFlowControlPreventsRNR(t *testing.T) {
	// Blast far more chunks than there are credits at a reader that
	// drains slowly; the credit protocol must keep the reliable VIA
	// connection alive (an RNR would break it).
	r := newRig(2, KindSocketVIA)
	const total = 4 << 20
	var got int
	var gotErr error
	r.pair(t,
		func(p *sim.Proc, c Conn) {
			if err := c.SendSize(p, total); err != nil {
				t.Errorf("send: %v", err)
			}
			c.Close(p)
		},
		func(p *sim.Proc, c Conn) {
			buf := make([]byte, 1000) // deliberately unaligned with chunks
			for {
				n, err := c.Recv(p, buf)
				got += n
				if err != nil {
					gotErr = err
					return
				}
				p.Sleep(10 * sim.Microsecond)
			}
		},
	)
	if gotErr != io.EOF {
		t.Fatalf("reader ended with %v, want EOF", gotErr)
	}
	if got != total {
		t.Fatalf("received %d, want %d", got, total)
	}
}

func TestSocketVIASmallSendsShareChunks(t *testing.T) {
	// Many tiny sends must each arrive intact (each is its own eager
	// chunk in this design) and in order.
	r := newRig(2, KindSocketVIA)
	const count = 300
	var ok bool
	r.pair(t,
		func(p *sim.Proc, c Conn) {
			for i := 0; i < count; i++ {
				c.Send(p, []byte{byte(i), byte(i >> 8)})
			}
			c.Close(p)
		},
		func(p *sim.Proc, c Conn) {
			buf := make([]byte, 2)
			for i := 0; i < count; i++ {
				if _, err := c.RecvFull(p, buf); err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
				if int(buf[0])|int(buf[1])<<8 != i {
					t.Errorf("message %d corrupted: % x", i, buf)
					return
				}
			}
			ok = true
		},
	)
	if !ok {
		t.Fatal("receiver did not finish")
	}
}

func TestSocketVIABufferReuseDoesNotCorrupt(t *testing.T) {
	// Send more distinct real payloads than there are send buffers;
	// recycled buffers must not corrupt earlier in-flight chunks.
	r := newRig(2, KindSocketVIA)
	prof := CLANProfile()
	chunk := prof.SV.ChunkSize
	const msgs = 64
	payload := func(i int) []byte {
		b := make([]byte, chunk)
		for j := range b {
			b[j] = byte(i ^ j)
		}
		return b
	}
	r.pair(t,
		func(p *sim.Proc, c Conn) {
			for i := 0; i < msgs; i++ {
				c.Send(p, payload(i))
			}
			c.Close(p)
		},
		func(p *sim.Proc, c Conn) {
			buf := make([]byte, chunk)
			for i := 0; i < msgs; i++ {
				if _, err := c.RecvFull(p, buf); err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
				want := payload(i)
				for j := range buf {
					if buf[j] != want[j] {
						t.Errorf("message %d corrupted at %d", i, j)
						return
					}
				}
			}
		},
	)
}
