package core

import (
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"hpsockets/internal/sim"
)

// Conformance battery: behaviours every transport must share, run
// against both implementations.

func TestConformanceZeroLengthOps(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		r := newRig(2, kind)
		r.pair(t,
			func(p *sim.Proc, c Conn) {
				if err := c.Send(p, nil); err != nil {
					t.Errorf("empty send: %v", err)
				}
				if err := c.SendSize(p, 0); err != nil {
					t.Errorf("zero SendSize: %v", err)
				}
				c.Send(p, []byte("x"))
				c.Close(p)
			},
			func(p *sim.Proc, c Conn) {
				if n, err := c.Recv(p, nil); n != 0 || err != nil {
					t.Errorf("zero-length recv = %d, %v", n, err)
				}
				buf := make([]byte, 4)
				n, err := c.Recv(p, buf)
				if n != 1 || err != nil || buf[0] != 'x' {
					t.Errorf("recv = %d %v %q", n, err, buf[:n])
				}
			},
		)
	})
}

func TestConformanceSingleHugeSend(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		r := newRig(2, kind)
		const n = 16 << 20
		var got int
		r.pair(t,
			func(p *sim.Proc, c Conn) {
				if err := c.SendSize(p, n); err != nil {
					t.Errorf("send: %v", err)
				}
				c.Close(p)
			},
			func(p *sim.Proc, c Conn) {
				buf := make([]byte, 256*1024)
				for {
					m, err := c.Recv(p, buf)
					got += m
					if err == io.EOF {
						return
					}
					if err != nil {
						t.Errorf("recv: %v", err)
						return
					}
				}
			},
		)
		if got != n {
			t.Fatalf("received %d of %d", got, n)
		}
	})
}

func TestConformanceSequentialConnections(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		r := newRig(2, kind)
		l := r.f.Endpoint("b").Listen(7)
		const conns = 5
		var served int
		r.k.Go("srv", func(p *sim.Proc) {
			for i := 0; i < conns; i++ {
				c, err := l.Accept(p)
				if err != nil {
					t.Errorf("accept %d: %v", i, err)
					return
				}
				buf := make([]byte, 8)
				if _, err := c.RecvFull(p, buf[:5]); err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
				served++
				c.Close(p)
			}
		})
		r.k.Go("cli", func(p *sim.Proc) {
			for i := 0; i < conns; i++ {
				c, err := r.f.Endpoint("a").Dial(p, "b", 7)
				if err != nil {
					t.Errorf("dial %d: %v", i, err)
					return
				}
				c.Send(p, []byte("hello"))
				c.Close(p)
				// Wait for the peer's FIN before dialing again so the
				// test stays deterministic and simple.
				buf := make([]byte, 1)
				c.Recv(p, buf)
			}
		})
		r.k.RunAll()
		if served != conns {
			t.Fatalf("served %d of %d connections", served, conns)
		}
	})
}

func TestConformanceEchoLargeRoundTrips(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		r := newRig(2, kind)
		sizes := []int{1, 100, 4096, 70_000, 300_000}
		r.pair(t,
			func(p *sim.Proc, c Conn) {
				for _, n := range sizes {
					c.SendSize(p, n)
					buf := make([]byte, n)
					if _, err := c.RecvFull(p, buf); err != nil {
						t.Errorf("echo %d: %v", n, err)
						return
					}
				}
				c.Close(p)
			},
			func(p *sim.Proc, c Conn) {
				for _, n := range sizes {
					buf := make([]byte, n)
					if _, err := c.RecvFull(p, buf); err != nil {
						t.Errorf("server recv %d: %v", n, err)
						return
					}
					c.SendSize(p, n)
				}
			},
		)
	})
}

func TestConformanceTransportNames(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		r := newRig(2, kind)
		var connName, epName string
		r.pair(t,
			func(p *sim.Proc, c Conn) {
				connName = c.Transport()
				if c.LocalNode().Name() != "a" {
					t.Errorf("LocalNode = %q", c.LocalNode().Name())
				}
				c.Close(p)
			},
			func(p *sim.Proc, c Conn) {},
		)
		epName = r.f.Endpoint("a").Transport()
		if connName != kind.String() || epName != kind.String() {
			t.Fatalf("names: conn=%q ep=%q want %q", connName, epName, kind)
		}
	})
}

func TestConformanceVirtualTimeAdvancesWithTransfers(t *testing.T) {
	kinds(t, func(t *testing.T, kind Kind) {
		small := transferTime(t, kind, 1024)
		large := transferTime(t, kind, 1<<20)
		if large <= small {
			t.Fatalf("1MB (%v) not slower than 1KB (%v)", large, small)
		}
	})
}

func transferTime(t *testing.T, kind Kind, n int) sim.Time {
	t.Helper()
	r := newRig(2, kind)
	var done sim.Time
	r.pair(t,
		func(p *sim.Proc, c Conn) {
			c.SendSize(p, n)
			c.Close(p)
		},
		func(p *sim.Proc, c Conn) {
			buf := make([]byte, 64*1024)
			for {
				if _, err := c.Recv(p, buf); err != nil {
					done = p.Now()
					return
				}
			}
		},
	)
	return done
}

// TestPropertyConformanceRandomTraffic drives random traffic patterns
// through both transports, checking byte conservation.
func TestPropertyConformanceRandomTraffic(t *testing.T) {
	for _, kind := range []Kind{KindTCP, KindSocketVIA} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				r := newRig(2, kind)
				total := 0
				nSends := rng.Intn(10) + 1
				sizes := make([]int, nSends)
				for i := range sizes {
					sizes[i] = rng.Intn(60_000) + 1
					total += sizes[i]
				}
				got := 0
				ok := true
				l := r.f.Endpoint("b").Listen(1)
				r.k.Go("srv", func(p *sim.Proc) {
					c, err := l.Accept(p)
					if err != nil {
						ok = false
						return
					}
					buf := make([]byte, rng.Intn(30_000)+100)
					for {
						n, err := c.Recv(p, buf)
						got += n
						if err != nil {
							return
						}
					}
				})
				r.k.Go("cli", func(p *sim.Proc) {
					c, err := r.f.Endpoint("a").Dial(p, "b", 1)
					if err != nil {
						ok = false
						return
					}
					for _, n := range sizes {
						c.SendSize(p, n)
						if rng.Intn(3) == 0 {
							p.Sleep(sim.Time(rng.Intn(1000)) * sim.Microsecond)
						}
					}
					c.Close(p)
				})
				r.k.RunAll()
				return ok && got == total
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
