// Package core is the high-performance sockets substrate the paper
// studies: a sockets-style stream API with two interchangeable
// implementations.
//
//   - SocketVIA: a user-level sockets layer over the VIA emulation,
//     reproducing the design of the paper's substrate (and of SOVIA /
//     Shah et al.): pre-registered eager buffer pools, chunked
//     transmission, credit-based flow control so the reliable-delivery
//     VIA never sees a message without a posted receive descriptor,
//     and a per-connection progress process that services the
//     completion queue.
//   - SocketTCP: a thin shim over the kernel TCP path (package ktcp).
//
// Applications written against Conn/Listener/Endpoint run unchanged on
// either transport, which is exactly the property the paper's sockets
// layer provides to TCP applications on cLAN hardware.
//
// # Errors versus panics
//
// Conditions a correct program can encounter at runtime — a peer that
// crashed, a frame the fault model ate, a deadline that expired, a
// descriptor pool drained by injected pressure — surface as typed
// errors: ErrBroken, ErrTimeout, ErrDescriptorExhausted (which wraps
// ErrBroken), ErrConnClosed, or io.EOF for a clean end of stream.
// Recovery code matches them with errors.Is and reacts (Redial, fail
// over, resend). Panics are reserved for programmer-error invariants
// that no fault scenario can trigger: invalid configurations,
// misframed immediate values built by this package itself, dialing a
// node that does not exist. If a panic fires, the simulation model is
// wrong, not the simulated network.
package core

import (
	"errors"
	"fmt"
	"io"

	"hpsockets/internal/cluster"
	"hpsockets/internal/sim"
)

// Conn is a reliable, in-order byte-stream connection.
//
// Send blocks until the data is accepted by the transport's buffering
// (not until it is delivered). SendSize behaves like Send for n bytes
// of synthetic payload that carries no real data, so large simulated
// workloads avoid shuffling real memory; real and size-only regions
// may be interleaved freely and framing bytes are preserved exactly.
type Conn interface {
	// Send writes real bytes to the stream. The connection may retain
	// data until it drains; callers must not mutate it.
	Send(p *sim.Proc, data []byte) error
	// SendSize writes n size-only bytes.
	SendSize(p *sim.Proc, n int) error
	// Recv reads up to len(buf) bytes, blocking while the stream is
	// empty; it returns io.EOF at end of stream.
	Recv(p *sim.Proc, buf []byte) (int, error)
	// RecvFull reads exactly len(buf) bytes unless the stream ends.
	RecvFull(p *sim.Proc, buf []byte) (int, error)
	// Close flushes buffered data and signals end of stream to the
	// peer. The receive direction remains readable. Closing twice is
	// safe.
	Close(p *sim.Proc) error
	// SetTimeout bounds every subsequent blocking wait inside Send
	// and Recv to d of virtual time; an expired bound fails the
	// operation with ErrTimeout. Zero (the default) waits forever.
	SetTimeout(d sim.Time)
	// Transport names the implementation ("tcp" or "socketvia").
	Transport() string
	// LocalNode reports the node this endpoint lives on.
	LocalNode() *cluster.Node
}

// Listener accepts inbound connections on a service number.
type Listener interface {
	Accept(p *sim.Proc) (Conn, error)
	Close()
}

// Endpoint is a node's attachment to one transport.
type Endpoint interface {
	// Node reports the host of this endpoint.
	Node() *cluster.Node
	// Listen binds a service number.
	Listen(svc int) Listener
	// Dial opens a connection to a service on a remote node (by port
	// name), blocking for connection setup.
	Dial(p *sim.Proc, remote string, svc int) (Conn, error)
	// Transport names the implementation.
	Transport() string
}

// recvFull implements RecvFull on top of Recv for both transports. A
// clean end of stream before the first byte passes through as a bare
// io.EOF; any failure after bytes of this read have landed is wrapped
// with the bytes-read context, so recovery code can tell a tidy
// stream end from a mid-message break.
func recvFull(c Conn, p *sim.Proc, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := c.Recv(p, buf[total:])
		total += n
		if err != nil {
			if total == 0 && errors.Is(err, io.EOF) {
				return 0, err
			}
			return total, fmt.Errorf("recvFull: short read %d/%d: %w", total, len(buf), err)
		}
	}
	return total, nil
}
