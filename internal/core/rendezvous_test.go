package core

import (
	"io"
	"testing"

	"hpsockets/internal/cluster"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// newRendRig builds a two-node SocketVIA rig with the zero-copy
// rendezvous enabled at the given threshold.
func newRendRig(threshold int) *rig {
	prof := CLANProfile()
	prof.SV.RendezvousThreshold = threshold
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	cl.AddNode("a", cluster.DefaultConfig())
	cl.AddNode("b", cluster.DefaultConfig())
	return &rig{k: k, cl: cl, f: NewFabric(cl, KindSocketVIA, prof)}
}

func TestRendezvousDeliversLargePayloadIntact(t *testing.T) {
	r := newRendRig(16 * 1024)
	const n = 200_000 // several 64K rendezvous pieces
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(i * 17)
	}
	var got []byte
	r.pair(t,
		func(p *sim.Proc, c Conn) {
			if err := c.Send(p, msg); err != nil {
				t.Errorf("send: %v", err)
			}
			c.Close(p)
		},
		func(p *sim.Proc, c Conn) {
			buf := make([]byte, n)
			if _, err := c.RecvFull(p, buf); err != nil {
				t.Errorf("recv: %v", err)
			}
			got = buf
		},
	)
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestRendezvousInterleavesWithEagerInOrder(t *testing.T) {
	r := newRendRig(16 * 1024)
	big := make([]byte, 32*1024)
	for i := range big {
		big[i] = 0xBB
	}
	r.pair(t,
		func(p *sim.Proc, c Conn) {
			c.Send(p, []byte("S1"))  // eager
			c.Send(p, big)           // rendezvous
			c.Send(p, []byte("S2"))  // eager
			c.SendSize(p, 100_000)   // rendezvous, size-only
			c.Send(p, []byte("END")) // eager
			c.Close(p)
		},
		func(p *sim.Proc, c Conn) {
			var h1, h2 [2]byte
			c.RecvFull(p, h1[:])
			gotBig := make([]byte, len(big))
			c.RecvFull(p, gotBig)
			c.RecvFull(p, h2[:])
			skip := make([]byte, 100_000)
			c.RecvFull(p, skip)
			var end [3]byte
			c.RecvFull(p, end[:])
			if string(h1[:]) != "S1" || string(h2[:]) != "S2" || string(end[:]) != "END" {
				t.Errorf("framing lost: %q %q %q", h1, h2, end)
			}
			for i := range gotBig {
				if gotBig[i] != 0xBB {
					t.Errorf("big payload corrupted at %d", i)
					return
				}
			}
			if _, err := c.Recv(p, h1[:]); err != io.EOF {
				t.Errorf("trailing err = %v, want EOF", err)
			}
		},
	)
}

func TestRendezvousSlowReaderBackpressure(t *testing.T) {
	r := newRendRig(16 * 1024)
	const total = 4 << 20
	var sendDone, readStart sim.Time
	r.pair(t,
		func(p *sim.Proc, c Conn) {
			c.SendSize(p, total)
			sendDone = p.Now()
			c.Close(p)
		},
		func(p *sim.Proc, c Conn) {
			p.Sleep(100 * sim.Millisecond)
			readStart = p.Now()
			buf := make([]byte, 64*1024)
			for {
				if _, err := c.Recv(p, buf); err != nil {
					return
				}
			}
		},
	)
	if sendDone < readStart {
		t.Fatalf("sender finished at %v before reader started at %v: grants not deferred", sendDone, readStart)
	}
}

func TestRendezvousCutsSenderCPU(t *testing.T) {
	// The zero-copy path trades the per-byte eager copy for a
	// registration cost; for large transfers the sender's CPU time
	// must drop substantially.
	senderBusy := func(threshold int) float64 {
		r := newRendRig(threshold)
		l := r.f.Endpoint("b").Listen(1)
		r.k.Go("srv", func(p *sim.Proc) {
			c, _ := l.Accept(p)
			buf := make([]byte, 64*1024)
			for {
				if _, err := c.Recv(p, buf); err != nil {
					return
				}
			}
		})
		r.k.Go("cli", func(p *sim.Proc) {
			c, _ := r.f.Endpoint("a").Dial(p, "b", 1)
			p.Sleep(sim.Millisecond)
			for i := 0; i < 64; i++ {
				c.SendSize(p, 64*1024)
			}
			c.Close(p)
		})
		r.k.RunAll()
		return r.cl.Node("a").CPU().Utilization()
	}
	eager := senderBusy(0)
	zcopy := senderBusy(16 * 1024)
	if zcopy >= eager*0.8 {
		t.Fatalf("rendezvous sender CPU %.3f not well below eager %.3f", zcopy, eager)
	}
}

func TestRendezvousBandwidthComparableToEager(t *testing.T) {
	// Both modes are PCI-DMA bound at 64K messages; rendezvous must
	// not lose meaningful bandwidth to its control round trips.
	bw := func(threshold int) float64 {
		r := newRendRig(threshold)
		l := r.f.Endpoint("b").Listen(1)
		var mbps float64
		r.k.Go("srv", func(p *sim.Proc) {
			c, _ := l.Accept(p)
			buf := make([]byte, 64*1024)
			total := 0
			start := sim.Time(-1)
			for {
				n, err := c.Recv(p, buf)
				if start < 0 && n > 0 {
					start = p.Now()
				}
				total += n
				if err != nil {
					break
				}
			}
			mbps = sim.BitsPerSec(int64(total), p.Now()-start)
		})
		r.k.Go("cli", func(p *sim.Proc) {
			c, _ := r.f.Endpoint("a").Dial(p, "b", 1)
			p.Sleep(sim.Millisecond)
			for i := 0; i < 100; i++ {
				c.SendSize(p, 64*1024)
			}
			c.Close(p)
		})
		r.k.RunAll()
		return mbps
	}
	eager, zcopy := bw(0), bw(16*1024)
	if zcopy < 0.85*eager {
		t.Fatalf("rendezvous bandwidth %.0f Mbps below 85%% of eager %.0f Mbps", zcopy, eager)
	}
}

func TestRendezvousDeterministicReplay(t *testing.T) {
	run := func() sim.Time {
		r := newRendRig(8 * 1024)
		l := r.f.Endpoint("b").Listen(1)
		r.k.Go("srv", func(p *sim.Proc) {
			c, _ := l.Accept(p)
			buf := make([]byte, 16*1024)
			for {
				if _, err := c.Recv(p, buf); err != nil {
					return
				}
			}
		})
		r.k.Go("cli", func(p *sim.Proc) {
			c, _ := r.f.Endpoint("a").Dial(p, "b", 1)
			for i := 0; i < 30; i++ {
				c.SendSize(p, 1+(i*7919)%50000)
			}
			c.Close(p)
		})
		return r.k.RunAll()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replay diverged: %v vs %v", a, b)
	}
}
