package core

import (
	"errors"

	"hpsockets/internal/cluster"
	"hpsockets/internal/ktcp"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// mapTCPErr translates kernel-path errors to the package's typed
// errors so recovery code is transport-agnostic. io.EOF and nil pass
// through.
func mapTCPErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ktcp.ErrTimeout):
		return ErrTimeout
	case errors.Is(err, ktcp.ErrClosed):
		return ErrConnClosed
	default:
		return err
	}
}

// tcpEndpoint adapts a kernel TCP stack to the Endpoint interface.
type tcpEndpoint struct {
	st *ktcp.Stack
}

// NewTCPEndpoint attaches the kernel-path sockets implementation to a
// node.
func NewTCPEndpoint(node *cluster.Node, net *netsim.Network, cfg ktcp.Config) Endpoint {
	return &tcpEndpoint{st: ktcp.NewStack(node, net, cfg)}
}

func (e *tcpEndpoint) Node() *cluster.Node { return e.st.Node() }
func (e *tcpEndpoint) Transport() string   { return "tcp" }

func (e *tcpEndpoint) Listen(svc int) Listener {
	return &tcpListener{ep: e, l: e.st.Listen(svc)}
}

func (e *tcpEndpoint) Dial(p *sim.Proc, remote string, svc int) (Conn, error) {
	c, err := e.st.Connect(p, remote, svc)
	if err != nil {
		return nil, mapTCPErr(err)
	}
	return &tcpConn{ep: e, c: c}, nil
}

type tcpListener struct {
	ep *tcpEndpoint
	l  *ktcp.Listener
}

func (l *tcpListener) Accept(p *sim.Proc) (Conn, error) {
	c, err := l.l.Accept(p)
	if err != nil {
		return nil, err
	}
	return &tcpConn{ep: l.ep, c: c}, nil
}

func (l *tcpListener) Close() { l.l.Close() }

type tcpConn struct {
	ep *tcpEndpoint
	c  *ktcp.Conn
}

func (c *tcpConn) Send(p *sim.Proc, data []byte) error {
	return mapTCPErr(c.c.Send(p, data))
}
func (c *tcpConn) SendSize(p *sim.Proc, n int) error {
	return mapTCPErr(c.c.SendSize(p, n))
}
func (c *tcpConn) Recv(p *sim.Proc, buf []byte) (int, error) {
	n, err := c.c.Recv(p, buf)
	return n, mapTCPErr(err)
}
func (c *tcpConn) RecvFull(p *sim.Proc, buf []byte) (int, error) {
	return recvFull(c, p, buf)
}
func (c *tcpConn) Close(p *sim.Proc) error  { return c.c.Close(p) }
func (c *tcpConn) SetTimeout(d sim.Time)    { c.c.SetTimeout(d) }
func (c *tcpConn) Transport() string        { return "tcp" }
func (c *tcpConn) LocalNode() *cluster.Node { return c.ep.st.Node() }
