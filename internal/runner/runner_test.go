package runner

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestMapEachIndexOnce checks the core contract at many shapes: every
// index in [0, n) runs exactly once, whatever the worker count.
func TestMapEachIndexOnce(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{0, 10}, {1, 10}, {2, 10}, {4, 10}, {10, 10}, {64, 10},
		{4, 0}, {4, 1}, {4, 3}, {3, 1000}, {8, 1000},
	} {
		counts := make([]int32, tc.n)
		Map(tc.workers, tc.n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d n=%d: index %d ran %d times", tc.workers, tc.n, i, c)
			}
		}
	}
}

// TestMapInlineOrder checks that the sequential path (workers <= 1)
// runs cells in ascending index order on the calling goroutine.
func TestMapInlineOrder(t *testing.T) {
	for _, workers := range []int{-1, 0, 1} {
		var got []int
		Map(workers, 5, func(i int) { got = append(got, i) })
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: order %v", workers, got)
			}
		}
		if len(got) != 5 {
			t.Fatalf("workers=%d: ran %d of 5", workers, len(got))
		}
	}
}

// TestMapStealing forces an imbalanced load — one worker's share is
// much slower than the others' — and checks completion. With half the
// indices cheap, idle workers must steal from the loaded share to
// finish; a lost index would hang or fail the count.
func TestMapStealing(t *testing.T) {
	const n = 256
	var ran atomic.Int32
	var mu sync.Mutex
	seen := make(map[int]bool, n)
	Map(4, n, func(i int) {
		if i < n/8 {
			// Simulate a heavy cell with real work (spinning on atomics
			// keeps the race detector engaged).
			for j := 0; j < 2000; j++ {
				ran.Load()
			}
		}
		mu.Lock()
		if seen[i] {
			mu.Unlock()
			t.Errorf("index %d ran twice", i)
			return
		}
		seen[i] = true
		mu.Unlock()
		ran.Add(1)
	})
	if ran.Load() != n {
		t.Fatalf("ran %d of %d", ran.Load(), n)
	}
}

// TestMapPanicPropagates checks that a cell panic reaches the caller
// after all workers have retired.
func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	Map(4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
	t.Fatal("Map returned instead of panicking")
}

// TestPackUnpack checks the bounds packing round-trips at the edges.
func TestPackUnpack(t *testing.T) {
	for _, tc := range [][2]uint32{{0, 0}, {0, 1}, {5, 9}, {1<<31 - 2, 1<<31 - 1}} {
		lo, hi := unpack(pack(tc[0], tc[1]))
		if lo != tc[0] || hi != tc[1] {
			t.Fatalf("pack/unpack(%d,%d) = %d,%d", tc[0], tc[1], lo, hi)
		}
	}
}
