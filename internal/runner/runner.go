// Package runner executes independent experiment cells in parallel.
//
// The paper's figure grid is embarrassingly parallel: every data point
// (one transport × message-size × repetition combination) builds its
// own sim.Kernel, its own netsim fabric and its own seeded RNGs, and
// shares no mutable state with any other point. The runner fans those
// cells out across OS threads with range work-stealing and writes each
// result into a caller-indexed slot, so the reassembled output is in
// canonical cell order — byte-identical to a sequential run — at any
// worker count.
//
// Determinism argument: parallelism changes only *when* (in wall-clock
// terms) and *on which thread* a cell runs, never what the cell
// computes (each cell is hermetic and self-seeded) nor where its
// result lands (slot i belongs to cell i). The only cross-cell state a
// cell may touch must be an order-independent pure cache (memoized
// pure functions), which by definition returns the same value
// whichever cell fills it first.
package runner

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// share is one worker's claimable index range [next, limit), packed
// into a single uint64 (next in the high 32 bits) so both bounds move
// under one CAS. The owner takes from the front; thieves split off the
// back half. Either way the full word is compared, so a take and a
// steal can never both succeed on the same indices.
type share struct {
	bounds atomic.Uint64
	// pad spaces the hot words a cache line apart so workers hammering
	// their own share don't false-share neighbours.
	_ [7]uint64
}

func pack(next, limit uint32) uint64 { return uint64(next)<<32 | uint64(limit) }

func unpack(v uint64) (next, limit uint32) { return uint32(v >> 32), uint32(v) }

// Map runs fn(i) for every i in [0, n), using up to workers OS
// threads. fn must be safe to call concurrently for distinct i; calls
// for the same i never overlap (each index is claimed exactly once).
// With workers <= 1 (or n <= 1) everything runs inline on the caller's
// goroutine. A panic in any cell is re-raised on the caller.
func Map(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if n > 1<<31-1 {
		panic(fmt.Sprintf("runner: %d cells overflow the packed range", n))
	}

	// Initial contiguous split. Cell order inside a share is ascending,
	// so with zero steals the execution order is the sequential one.
	shares := make([]share, workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		shares[w].bounds.Store(pack(uint32(lo), uint32(hi)))
	}

	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(self int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			work(shares, self, fn)
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// work drains the worker's own share, stealing half of the fullest
// victim's remainder whenever it runs dry, until no share holds work.
func work(shares []share, self int, fn func(i int)) {
	for {
		// Take one index from the front of our own share.
		for {
			v := shares[self].bounds.Load()
			next, limit := unpack(v)
			if next >= limit {
				break
			}
			if shares[self].bounds.CompareAndSwap(v, pack(next+1, limit)) {
				fn(int(next))
			}
		}
		// Own share empty: steal the back half of the fullest victim.
		if !steal(shares, self) {
			return
		}
	}
}

// steal moves half of the fullest other share into self's (empty)
// share. It reports false when every share is empty — the worker can
// retire: indices already claimed are being run by their claimants.
func steal(shares []share, self int) bool {
	for {
		victim, best := -1, uint32(0)
		var victimV uint64
		for i := range shares {
			if i == self {
				continue
			}
			v := shares[i].bounds.Load()
			next, limit := unpack(v)
			if avail := limit - next; next < limit && avail > best {
				victim, best, victimV = i, avail, v
			}
		}
		if victim < 0 {
			return false
		}
		next, limit := unpack(victimV)
		mid := next + (limit-next+1)/2
		if !shares[victim].bounds.CompareAndSwap(victimV, pack(next, mid)) {
			continue // victim's share moved under us; rescan
		}
		// [mid, limit) is ours alone now: no thief can have seen it,
		// and future thieves will race through our own share's CAS.
		shares[self].bounds.Store(pack(mid, limit))
		return true
	}
}
