// Package bytebuf implements a byte-stream buffer whose contents may
// mix real data with size-only ("accounting") regions.
//
// The simulated transports carry application payloads end to end; for
// large synthetic workloads the applications may send size-only
// payloads so that the simulation does not shuffle gigabytes of real
// memory. A stream then interleaves real regions (message framing
// headers, control structures) with size-only regions (bulk payload),
// and every split or copy must preserve which bytes are real.
package bytebuf

import "fmt"

// Chunk is a contiguous stream region. Data == nil marks a size-only
// region; otherwise len(Data) == Size.
type Chunk struct {
	Size int
	Data []byte
}

// Real reports whether the chunk carries actual bytes.
func (c Chunk) Real() bool { return c.Data != nil }

// Buffer is a FIFO byte-stream buffer. The zero value is an empty
// buffer ready to use.
//
// The chunk storage is a ring-free deque: head indexes the oldest
// live chunk instead of re-slicing the front away, so that when the
// buffer drains (the steady state of a transport send buffer) the
// same backing array is reused instead of appending into a forever-
// advancing window that forces reallocation.
type Buffer struct {
	chunks []Chunk
	head   int
	size   int
}

// Len reports the buffered byte count.
func (b *Buffer) Len() int { return b.size }

// reset recycles the storage once the buffer is empty.
func (b *Buffer) reset() {
	if b.size == 0 {
		b.chunks = b.chunks[:0]
		b.head = 0
	}
}

// Append adds a chunk to the tail.
func (b *Buffer) Append(c Chunk) {
	if c.Size < 0 || (c.Data != nil && len(c.Data) != c.Size) {
		panic(fmt.Sprintf("bytebuf: inconsistent chunk size=%d len=%d", c.Size, len(c.Data)))
	}
	if c.Size == 0 {
		return
	}
	b.reset()
	b.chunks = append(b.chunks, c)
	b.size += c.Size
}

// AppendBytes adds real data to the tail. The buffer keeps a reference
// to data; callers must not mutate it afterwards (the bufalias
// analyzer enforces this at the call sites it can see).
//
// The no-mutation contract is what lets the simulated transports be
// zero-copy on the wire: ktcp segments alias the sender's chunks
// end to end, and the VIA send engine aliases one private per-message
// wire buffer across all of its fragments. The fabric never mutates
// payload bytes — netsim models corruption as a per-frame envelope
// flag, not a byte flip — so aliased data stays valid from send
// buffer to receive completion. Any future fault model that wants to
// rewrite payload bytes in flight must copy the region first.
func (b *Buffer) AppendBytes(data []byte) {
	if len(data) == 0 {
		return
	}
	b.Append(Chunk{Size: len(data), Data: data})
}

// AppendSize adds n size-only bytes to the tail.
func (b *Buffer) AppendSize(n int) {
	if n == 0 {
		return
	}
	b.Append(Chunk{Size: n})
}

// AppendChunks adds a sequence of chunks to the tail.
func (b *Buffer) AppendChunks(cs []Chunk) {
	for _, c := range cs {
		b.Append(c)
	}
}

// Take removes exactly n bytes from the head and returns them as
// chunks, splitting a boundary chunk if needed. It panics if n exceeds
// Len: transports must check first.
func (b *Buffer) Take(n int) []Chunk {
	return b.TakeInto(nil, n)
}

// TakeInto is Take appending into dst, letting callers recycle the
// chunk slice of a pooled segment instead of allocating a fresh one
// per Take.
func (b *Buffer) TakeInto(dst []Chunk, n int) []Chunk {
	if n < 0 || n > b.size {
		panic(fmt.Sprintf("bytebuf: take %d of %d", n, b.size))
	}
	for n > 0 {
		head := &b.chunks[b.head]
		if head.Size <= n {
			dst = append(dst, *head)
			n -= head.Size
			b.size -= head.Size
			*head = Chunk{}
			b.head++
			continue
		}
		part := Chunk{Size: n}
		if head.Data != nil {
			part.Data = head.Data[:n]
			head.Data = head.Data[n:]
		}
		head.Size -= n
		b.size -= n
		dst = append(dst, part)
		n = 0
	}
	b.reset()
	return dst
}

// CopyOut removes up to len(dst) bytes from the head, copying real
// regions into dst at their stream offsets (size-only regions leave
// dst untouched), and reports the number of bytes consumed. It
// consumes chunks in place — no intermediate chunk slice.
func (b *Buffer) CopyOut(dst []byte) int {
	n := len(dst)
	if n > b.size {
		n = b.size
	}
	off := 0
	for off < n {
		head := &b.chunks[b.head]
		take := head.Size
		if take > n-off {
			take = n - off
		}
		if head.Data != nil {
			copy(dst[off:], head.Data[:take])
			head.Data = head.Data[take:]
		}
		head.Size -= take
		b.size -= take
		off += take
		if head.Size == 0 {
			*head = Chunk{}
			b.head++
		}
	}
	b.reset()
	return n
}

// RealBytes reports how many buffered bytes are real data (used by
// tests and integrity checks).
func (b *Buffer) RealBytes() int {
	total := 0
	for _, c := range b.chunks[b.head:] {
		if c.Data != nil {
			total += c.Size
		}
	}
	return total
}
