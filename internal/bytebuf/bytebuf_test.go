package bytebuf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAppendAndLen(t *testing.T) {
	var b Buffer
	b.AppendBytes([]byte("hello"))
	b.AppendSize(10)
	b.AppendBytes([]byte("!"))
	if b.Len() != 16 {
		t.Fatalf("Len = %d, want 16", b.Len())
	}
	if b.RealBytes() != 6 {
		t.Fatalf("RealBytes = %d, want 6", b.RealBytes())
	}
}

func TestAppendEmptyIsNoop(t *testing.T) {
	var b Buffer
	b.AppendBytes(nil)
	b.AppendSize(0)
	if b.Len() != 0 {
		t.Fatalf("Len = %d, want 0", b.Len())
	}
}

func TestTakeSplitsRealChunk(t *testing.T) {
	var b Buffer
	b.AppendBytes([]byte("abcdef"))
	got := b.Take(4)
	if len(got) != 1 || string(got[0].Data) != "abcd" || got[0].Size != 4 {
		t.Fatalf("Take(4) = %+v", got)
	}
	rest := b.Take(2)
	if string(rest[0].Data) != "ef" {
		t.Fatalf("rest = %+v", rest)
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after draining", b.Len())
	}
}

func TestTakeSplitsSizeOnlyChunk(t *testing.T) {
	var b Buffer
	b.AppendSize(100)
	got := b.Take(30)
	if len(got) != 1 || got[0].Size != 30 || got[0].Data != nil {
		t.Fatalf("Take = %+v", got)
	}
	if b.Len() != 70 {
		t.Fatalf("Len = %d, want 70", b.Len())
	}
}

func TestTakeAcrossChunks(t *testing.T) {
	var b Buffer
	b.AppendBytes([]byte("ab"))
	b.AppendSize(3)
	b.AppendBytes([]byte("cd"))
	got := b.Take(6)
	if len(got) != 3 {
		t.Fatalf("Take = %+v", got)
	}
	if string(got[0].Data) != "ab" || got[1].Size != 3 || got[1].Real() || string(got[2].Data) != "c" {
		t.Fatalf("Take = %+v", got)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
}

func TestTakeBeyondLenPanics(t *testing.T) {
	var b Buffer
	b.AppendSize(5)
	defer func() {
		if recover() == nil {
			t.Error("over-take did not panic")
		}
	}()
	b.Take(6)
}

func TestCopyOutMixedRegions(t *testing.T) {
	var b Buffer
	b.AppendBytes([]byte("AB"))
	b.AppendSize(2)
	b.AppendBytes([]byte("CD"))
	dst := []byte("......")
	n := b.CopyOut(dst)
	if n != 6 {
		t.Fatalf("n = %d, want 6", n)
	}
	if string(dst) != "AB..CD" {
		t.Fatalf("dst = %q, want AB..CD", dst)
	}
}

func TestCopyOutPartial(t *testing.T) {
	var b Buffer
	b.AppendBytes([]byte("hello world"))
	dst := make([]byte, 5)
	if n := b.CopyOut(dst); n != 5 || string(dst) != "hello" {
		t.Fatalf("CopyOut = %d %q", n, dst)
	}
	dst2 := make([]byte, 20)
	n := b.CopyOut(dst2)
	if n != 6 || string(dst2[:n]) != " world" {
		t.Fatalf("second CopyOut = %d %q", n, dst2[:n])
	}
}

func TestCopyOutEmptyBuffer(t *testing.T) {
	var b Buffer
	if n := b.CopyOut(make([]byte, 4)); n != 0 {
		t.Fatalf("CopyOut on empty = %d", n)
	}
}

func TestAppendChunks(t *testing.T) {
	var b Buffer
	b.AppendChunks([]Chunk{{Size: 3, Data: []byte("abc")}, {Size: 5}})
	if b.Len() != 8 || b.RealBytes() != 3 {
		t.Fatalf("Len=%d Real=%d", b.Len(), b.RealBytes())
	}
}

func TestInconsistentChunkPanics(t *testing.T) {
	var b Buffer
	defer func() {
		if recover() == nil {
			t.Error("inconsistent chunk did not panic")
		}
	}()
	b.Append(Chunk{Size: 3, Data: []byte("ab")})
}

// TestPropertyStreamIntegrity pushes random mixtures of real and
// size-only data through random Take splits and re-assembles them,
// checking that real bytes come out exactly where they went in.
func TestPropertyStreamIntegrity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b Buffer
		var want []byte // -1 regions encoded as 0xFF sentinel map
		mask := []bool{}
		total := 0
		for i := 0; i < rng.Intn(10)+1; i++ {
			n := rng.Intn(50) + 1
			if rng.Intn(2) == 0 {
				data := make([]byte, n)
				rng.Read(data)
				b.AppendBytes(data)
				want = append(want, data...)
				for j := 0; j < n; j++ {
					mask = append(mask, true)
				}
			} else {
				b.AppendSize(n)
				want = append(want, make([]byte, n)...)
				for j := 0; j < n; j++ {
					mask = append(mask, false)
				}
			}
			total += n
		}
		// Shuttle through random-size takes into a second buffer.
		var b2 Buffer
		for b.Len() > 0 {
			n := rng.Intn(b.Len()) + 1
			b2.AppendChunks(b.Take(n))
		}
		if b2.Len() != total {
			return false
		}
		got := make([]byte, total)
		if b2.CopyOut(got) != total {
			return false
		}
		for i := range got {
			if mask[i] && got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLenInvariant checks Len consistency across arbitrary
// operation sequences.
func TestPropertyLenInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		var b Buffer
		expect := 0
		for _, op := range ops {
			n := int(op%32) + 1
			switch op % 3 {
			case 0:
				b.AppendSize(n)
				expect += n
			case 1:
				b.AppendBytes(bytes.Repeat([]byte{op}, n))
				expect += n
			case 2:
				if b.Len() > 0 {
					take := n % b.Len()
					if take == 0 {
						take = b.Len()
					}
					b.Take(take)
					expect -= take
				}
			}
			if b.Len() != expect {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
