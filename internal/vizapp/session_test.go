package vizapp

import (
	"testing"

	"hpsockets/internal/core"
)

func TestSessionOpenFetchesWholeImage(t *testing.T) {
	ds := NewDataset(2048, 2048, 1, 512, 512)
	cfg := DefaultPipelineConfig(core.KindSocketVIA, 0)
	res := RunSession(cfg, ds, []Interaction{Open()})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	st := res.Steps[0]
	if st.Blocks != 16 || st.Fetched != ds.TotalBytes() || st.Wasted != 0 {
		t.Fatalf("open step = %+v", st)
	}
	if st.Response <= 0 {
		t.Fatal("no response time recorded")
	}
}

func TestSessionPanFetchesOnlyExcessBlocks(t *testing.T) {
	ds := NewDataset(2048, 2048, 1, 256, 256)
	cfg := DefaultPipelineConfig(core.KindSocketVIA, 0)
	res := RunSession(cfg, ds, []Interaction{Open(), Zoom(2), Pan(256, 0)})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	pan := res.Steps[2]
	// A 256-pixel pan of a 1024-high viewport fetches one column of
	// blocks: 1024/256 = 4 blocks.
	if pan.Blocks != 4 {
		t.Fatalf("pan fetched %d blocks, want 4: %+v", pan.Blocks, pan)
	}
	open := res.Steps[0]
	if pan.Response >= open.Response {
		t.Fatalf("pan response %v not below open response %v", pan.Response, open.Response)
	}
}

func TestSessionFinerBlocksWasteLess(t *testing.T) {
	script := []Interaction{Open(), Zoom(4), Pan(100, 100)}
	run := func(blockPx int) int {
		ds := NewDataset(2048, 2048, 1, blockPx, blockPx)
		cfg := DefaultPipelineConfig(core.KindSocketVIA, 0)
		res := RunSession(cfg, ds, script)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		total := 0
		for _, st := range res.Steps {
			total += st.Wasted
		}
		return total
	}
	coarse, fine := run(1024), run(128)
	if fine >= coarse {
		t.Fatalf("fine blocks wasted %d !< coarse %d", fine, coarse)
	}
}

func TestSessionViewStaysInsideImage(t *testing.T) {
	ds := NewDataset(1024, 1024, 1, 256, 256)
	s := &Session{DS: ds}
	s.step(Open())
	s.step(Zoom(2))
	// Pan far past the edge.
	s.step(Pan(5000, 5000))
	if s.View.X1 > ds.WidthPx || s.View.Y1 > ds.HeightPx {
		t.Fatalf("view escaped the image: %+v", s.View)
	}
}

func TestSessionZoomShrinksViewport(t *testing.T) {
	ds := NewDataset(4096, 4096, 1, 512, 512)
	s := &Session{DS: ds}
	s.step(Open())
	s.step(Zoom(4))
	if s.View.Width() != 1024 || s.View.Height() != 1024 {
		t.Fatalf("view after 4x zoom = %+v", s.View)
	}
}
