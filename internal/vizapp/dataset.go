package vizapp

import "fmt"

// Dataset models the Figure 1 storage layout of a digitized-microscopy
// image: a 2-D pixel grid partitioned into rectangular blocks (data
// chunks) for indexing. A query for any region must fetch every block
// it overlaps — whole blocks, even when only a corner is needed — so
// the block extent determines how much unnecessary data a partial
// query drags along.
type Dataset struct {
	// WidthPx and HeightPx are the image dimensions in pixels;
	// BytesPerPixel the storage cost of one pixel.
	WidthPx, HeightPx int
	BytesPerPixel     int
	// BlockPxW and BlockPxH are the block extent in pixels.
	BlockPxW, BlockPxH int
}

// Rect is a pixel-space region, half-open on both axes.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// Width and Height report the rectangle extent.
func (r Rect) Width() int { return r.X1 - r.X0 }

// Height reports the rectangle's vertical extent.
func (r Rect) Height() int { return r.Y1 - r.Y0 }

// Empty reports whether the rectangle covers no pixels.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Intersect clips r against s.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{max(r.X0, s.X0), max(r.Y0, s.Y0), min(r.X1, s.X1), min(r.Y1, s.Y1)}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Pixels reports the pixel count of the rectangle.
func (r Rect) Pixels() int {
	if r.Empty() {
		return 0
	}
	return r.Width() * r.Height()
}

// NewDataset validates and returns a dataset layout.
func NewDataset(widthPx, heightPx, bytesPerPixel, blockPxW, blockPxH int) *Dataset {
	if widthPx <= 0 || heightPx <= 0 || bytesPerPixel <= 0 || blockPxW <= 0 || blockPxH <= 0 {
		panic(fmt.Sprintf("vizapp: invalid dataset geometry %dx%d/%d blocks %dx%d",
			widthPx, heightPx, bytesPerPixel, blockPxW, blockPxH))
	}
	return &Dataset{
		WidthPx: widthPx, HeightPx: heightPx, BytesPerPixel: bytesPerPixel,
		BlockPxW: blockPxW, BlockPxH: blockPxH,
	}
}

// Bounds reports the whole-image rectangle.
func (d *Dataset) Bounds() Rect { return Rect{0, 0, d.WidthPx, d.HeightPx} }

// GridW and GridH report the block grid dimensions.
func (d *Dataset) GridW() int { return (d.WidthPx + d.BlockPxW - 1) / d.BlockPxW }

// GridH reports the number of block rows.
func (d *Dataset) GridH() int { return (d.HeightPx + d.BlockPxH - 1) / d.BlockPxH }

// Blocks reports the total block count.
func (d *Dataset) Blocks() int { return d.GridW() * d.GridH() }

// TotalBytes reports the stored image size.
func (d *Dataset) TotalBytes() int { return d.WidthPx * d.HeightPx * d.BytesPerPixel }

// BlockRect reports block b's pixel rectangle (clipped at the image
// edge).
func (d *Dataset) BlockRect(b int) Rect {
	if b < 0 || b >= d.Blocks() {
		panic(fmt.Sprintf("vizapp: block %d outside grid of %d", b, d.Blocks()))
	}
	gx, gy := b%d.GridW(), b/d.GridW()
	r := Rect{gx * d.BlockPxW, gy * d.BlockPxH, (gx + 1) * d.BlockPxW, (gy + 1) * d.BlockPxH}
	return r.Intersect(d.Bounds())
}

// BlockBytes reports block b's stored size (edge blocks are smaller).
func (d *Dataset) BlockBytes(b int) int {
	return d.BlockRect(b).Pixels() * d.BytesPerPixel
}

// BlocksFor reports the ids of every block a query rectangle overlaps,
// in row-major order. Each must be fetched whole.
func (d *Dataset) BlocksFor(q Rect) []int {
	q = q.Intersect(d.Bounds())
	if q.Empty() {
		return nil
	}
	gx0 := q.X0 / d.BlockPxW
	gy0 := q.Y0 / d.BlockPxH
	gx1 := (q.X1 - 1) / d.BlockPxW
	gy1 := (q.Y1 - 1) / d.BlockPxH
	var out []int
	for gy := gy0; gy <= gy1; gy++ {
		for gx := gx0; gx <= gx1; gx++ {
			out = append(out, gy*d.GridW()+gx)
		}
	}
	return out
}

// FetchBytes reports the bytes retrieved for a query: whole blocks.
func (d *Dataset) FetchBytes(q Rect) int {
	total := 0
	for _, b := range d.BlocksFor(q) {
		total += d.BlockBytes(b)
	}
	return total
}

// WastedBytes reports the unnecessary data a query drags along: the
// fetched bytes minus the bytes actually inside the query rectangle
// (Figure 1's dotted-rectangle effect).
func (d *Dataset) WastedBytes(q Rect) int {
	q = q.Intersect(d.Bounds())
	useful := 0
	for _, b := range d.BlocksFor(q) {
		useful += d.BlockRect(b).Intersect(q).Pixels() * d.BytesPerPixel
	}
	return d.FetchBytes(q) - useful
}

// PanQuery returns the excess region fetched when the viewport moves
// by (dx, dy): the newly exposed strip(s), clipped to the image.
func PanQuery(view Rect, dx, dy int) []Rect {
	moved := Rect{view.X0 + dx, view.Y0 + dy, view.X1 + dx, view.Y1 + dy}
	var out []Rect
	if dx > 0 {
		out = append(out, Rect{view.X1, moved.Y0, moved.X1, moved.Y1})
	} else if dx < 0 {
		out = append(out, Rect{moved.X0, moved.Y0, view.X0, moved.Y1})
	}
	if dy > 0 {
		out = append(out, Rect{moved.X0, view.Y1, min(moved.X1, view.X1), moved.Y1})
	} else if dy < 0 {
		out = append(out, Rect{moved.X0, moved.Y0, min(moved.X1, view.X1), view.Y0})
	}
	clean := out[:0]
	for _, r := range out {
		if !r.Empty() {
			clean = append(clean, r)
		}
	}
	return clean
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
