package vizapp

import (
	"testing"

	"hpsockets/internal/core"
	"hpsockets/internal/datacutter"
	"hpsockets/internal/sim"
)

func TestPipelineCompleteQueryRuns(t *testing.T) {
	cfg := DefaultPipelineConfig(core.KindSocketVIA, 64*1024)
	cfg.ImageBytes = 1 << 20 // keep the unit test quick
	res := RunPipeline(cfg, []Query{cfg.CompleteQuery()})
	if res.Err != nil {
		t.Fatalf("pipeline error: %v", res.Err)
	}
	if len(res.Done) != 1 || res.Done[0] <= res.Start[0] {
		t.Fatalf("timings = %v %v", res.Start, res.Done)
	}
}

func TestPipelineBlockAccounting(t *testing.T) {
	cfg := DefaultPipelineConfig(core.KindTCP, 64*1024)
	if got := cfg.CompleteBlocks(); got != 256 {
		t.Fatalf("CompleteBlocks = %d, want 256", got)
	}
	cfg.BlockSize = 3 << 20
	if got := cfg.CompleteBlocks(); got != 6 {
		t.Fatalf("CompleteBlocks = %d, want 6", got)
	}
	// Total bytes across blocks must equal the image exactly.
	app := &pipelineApp{cfg: cfg}
	total := 0
	for b := 0; b < cfg.CompleteBlocks(); b++ {
		total += app.blockBytes(b, cfg.CompleteBlocks())
	}
	if total != cfg.ImageBytes {
		t.Fatalf("block bytes sum %d, want %d", total, cfg.ImageBytes)
	}
}

func TestPipelineSequentialGating(t *testing.T) {
	cfg := DefaultPipelineConfig(core.KindSocketVIA, 32*1024)
	cfg.ImageBytes = 256 * 1024
	cfg.Sequential = true
	res := RunPipeline(cfg, []Query{cfg.CompleteQuery(), cfg.CompleteQuery(), cfg.CompleteQuery()})
	if res.Err != nil {
		t.Fatalf("pipeline error: %v", res.Err)
	}
	for i := 1; i < 3; i++ {
		if res.Start[i] < res.Done[i-1] {
			t.Fatalf("query %d started at %v before previous finished at %v", i, res.Start[i], res.Done[i-1])
		}
	}
}

func TestPipelineSocketVIAFasterThanTCP(t *testing.T) {
	queries := []Query{PartialQuery(), PartialQuery(), PartialQuery()}
	run := func(kind core.Kind) sim.Time {
		cfg := DefaultPipelineConfig(kind, 16*1024)
		cfg.Sequential = true
		res := RunPipeline(cfg, queries)
		if res.Err != nil {
			t.Fatalf("%v: %v", kind, res.Err)
		}
		return res.MeanResponse()
	}
	tcp, sv := run(core.KindTCP), run(core.KindSocketVIA)
	if sv >= tcp {
		t.Fatalf("SocketVIA partial latency %v !< TCP %v", sv, tcp)
	}
}

func TestPipelineThroughputImprovesWithBlockSizeTCP(t *testing.T) {
	run := func(block int) float64 {
		cfg := DefaultPipelineConfig(core.KindTCP, block)
		cfg.ImageBytes = 4 << 20
		q := cfg.CompleteQuery()
		res := RunPipeline(cfg, []Query{q, q, q, q})
		if res.Err != nil {
			t.Fatalf("block %d: %v", block, res.Err)
		}
		return res.UpdatesPerSec()
	}
	small, large := run(2*1024), run(64*1024)
	if large <= small {
		t.Fatalf("TCP updates/sec at 64K (%.2f) !> at 2K (%.2f)", large, small)
	}
}

func TestLoadBalancerProcessesEverything(t *testing.T) {
	cfg := DefaultLBConfig(core.KindSocketVIA, 2048)
	cfg.TotalBytes = 1 << 20
	res := RunLoadBalancer(cfg)
	if res.Err != nil {
		t.Fatalf("lb error: %v", res.Err)
	}
	total := 0
	for _, c := range res.BlocksPerNode {
		total += c
	}
	if total != 512 {
		t.Fatalf("blocks processed = %d, want 512", total)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %v", res.Makespan)
	}
}

func TestLoadBalancerDDSendsLessToSlowNode(t *testing.T) {
	cfg := DefaultLBConfig(core.KindSocketVIA, 2048)
	cfg.TotalBytes = 2 << 20
	cfg.SlowNode = 2
	cfg.SlowFactor = 8
	res := RunLoadBalancer(cfg)
	if res.Err != nil {
		t.Fatalf("lb error: %v", res.Err)
	}
	if res.BlocksPerNode[2] >= res.BlocksPerNode[0] {
		t.Fatalf("slow node got %v blocks vs fast %v", res.BlocksPerNode[2], res.BlocksPerNode[0])
	}
}

func TestLoadBalancerRRAckLatencyGrowsWithFactor(t *testing.T) {
	run := func(factor float64) sim.Time {
		cfg := DefaultLBConfig(core.KindTCP, 16*1024)
		cfg.TotalBytes = 2 << 20
		cfg.Policy = datacutter.RoundRobin
		cfg.RecordAcks = true
		cfg.SlowNode = 1
		cfg.SlowFactor = factor
		res := RunLoadBalancer(cfg)
		if res.Err != nil {
			t.Fatalf("factor %v: %v", factor, res.Err)
		}
		return res.MeanAckLatency(1)
	}
	l2, l8 := run(2), run(8)
	if l8 <= l2 {
		t.Fatalf("reaction at factor 8 (%v) !> factor 2 (%v)", l8, l2)
	}
}

func TestLoadBalancerDeterministic(t *testing.T) {
	run := func() sim.Time {
		cfg := DefaultLBConfig(core.KindTCP, 16*1024)
		cfg.TotalBytes = 1 << 20
		cfg.SlowNode = 0
		cfg.SlowFactor = 4
		cfg.SlowProb = 0.5
		return RunLoadBalancer(cfg).Makespan
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replay diverged: %v vs %v", a, b)
	}
}
