// Package vizapp implements the paper's evaluation applications on
// top of the DataCutter runtime: the digitized-microscopy
// visualization server of Figure 5 (a 4-stage pipeline with three
// transparent copies per stage) and the software load balancer of
// Figure 6 (a data repository feeding heterogeneous compute nodes).
package vizapp

import (
	"fmt"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/datacutter"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// PipelineConfig describes one visualization-server run.
type PipelineConfig struct {
	// Kind selects the transport (TCP or SocketVIA); Prof carries the
	// calibrated cost models.
	Kind core.Kind
	Prof core.Profile
	// Chains is the number of transparent copies per pipeline stage
	// (3 in the paper).
	Chains int
	// ImageBytes is the data volume of one complete image (16 MB).
	ImageBytes int
	// BlockSize is the distribution block size the dataset is
	// partitioned into; each block is retrieved as a whole.
	BlockSize int
	// ComputePerByte is the per-stage processing cost (0 for the "no
	// computation" experiments, 18 ns/byte for the Virtual Microscope
	// figure).
	ComputePerByte sim.Time
	// Sequential gates each query on the completion of the previous
	// one (an interactive client); otherwise queries pipeline
	// back-to-back for throughput measurement.
	Sequential bool
	// InboxDepth bounds buffered blocks per filter copy (default 2).
	InboxDepth int
	// ArrivalPeriod, when non-zero, paces the offered load: query i
	// becomes available at virtual time i*ArrivalPeriod and the
	// repositories wait for it (an update-rate client instead of a
	// closed loop).
	ArrivalPeriod sim.Time
	// UpdatePeriod, when non-zero, arms the update-rate guarantee:
	// every block of query i carries the deadline
	// i*ArrivalPeriod + UpdatePeriod through all three streams
	// (requires ArrivalPeriod), and the Shed policy decides what
	// happens when the pipeline cannot keep it.
	UpdatePeriod sim.Time
	// Shed is the overload policy of all three streams (default Block:
	// pure backpressure).
	Shed datacutter.ShedPolicy
	// CreditWindow arms credit-based flow control on all three streams
	// (0 = transport backpressure only).
	CreditWindow int
	// Hook, when set, receives the simulation kernel before the run —
	// e.g. to attach a trace.Recorder.
	Hook func(k *sim.Kernel)
}

// DefaultPipelineConfig returns the paper's setup for the given
// transport and block size.
func DefaultPipelineConfig(kind core.Kind, blockSize int) PipelineConfig {
	return PipelineConfig{
		Kind:       kind,
		Prof:       core.CLANProfile(),
		Chains:     3,
		ImageBytes: 16 << 20,
		BlockSize:  blockSize,
	}
}

// Query is one unit of work: the number of distribution blocks it
// touches.
type Query struct {
	Blocks int
}

// CompleteBlocks reports the block count of a complete update for the
// configuration.
func (cfg PipelineConfig) CompleteBlocks() int {
	return (cfg.ImageBytes + cfg.BlockSize - 1) / cfg.BlockSize
}

// CompleteQuery returns a full-image update.
func (cfg PipelineConfig) CompleteQuery() Query { return Query{Blocks: cfg.CompleteBlocks()} }

// PartialQuery returns a one-block partial update.
func PartialQuery() Query { return Query{Blocks: 1} }

// ZoomQuery returns a query touching n chunks (clamped to a complete
// update).
func (cfg PipelineConfig) ZoomQuery(n int) Query {
	if max := cfg.CompleteBlocks(); n > max {
		n = max
	}
	return Query{Blocks: n}
}

// Result carries the per-query timings of a pipeline run.
type Result struct {
	// Start[i] is when the repositories began fetching query i;
	// Done[i] is when the visualization filter finished it.
	Start []sim.Time
	Done  []sim.Time
	// End is the simulation time when the whole group finished.
	End sim.Time
	// Utilization reports each node's mean CPU busy fraction over the
	// run — where the bottleneck sits.
	Utilization map[string]float64
	Err         error

	// Update-rate accounting, populated when UpdatePeriod is armed.
	// Deadlines[i] is query i's guarantee; Expected[i] the block count
	// of a complete update; Blocks[i] and DegradedBlocks[i] what the
	// visualization filter actually received.
	Deadlines      []sim.Time
	Expected       []int
	Blocks         []int
	DegradedBlocks []int
	// Aggregate shed counters over all streams: deadline-expired drops
	// at producers, inbox-shed (oldest/newest/stale) at consumers, and
	// blocks sent at reduced resolution.
	ShedSend     uint64
	ShedInbox    uint64
	DegradedSent uint64
}

// UpdateOutcome classifies one query against its guarantee.
type UpdateOutcome int

const (
	// Held: the complete update arrived inside the window.
	Held UpdateOutcome = iota
	// Partial: something arrived inside the window, but blocks were
	// shed or degraded — the paper's partial-update fallback.
	Partial
	// Missed: the update finished after its deadline (or delivered
	// nothing).
	Missed
)

// Outcome classifies query i (meaningful only with UpdatePeriod set).
func (r Result) Outcome(i int) UpdateOutcome {
	if r.Done[i] > r.Deadlines[i] || r.Blocks[i] == 0 {
		return Missed
	}
	if r.Blocks[i] < r.Expected[i] || r.DegradedBlocks[i] > 0 {
		return Partial
	}
	return Held
}

// HoldMissCounts tallies the outcomes of all queries.
func (r Result) HoldMissCounts() (held, partial, missed int) {
	for i := range r.Done {
		switch r.Outcome(i) {
		case Held:
			held++
		case Partial:
			partial++
		default:
			missed++
		}
	}
	return held, partial, missed
}

// ResponseTimes returns per-query response times.
func (r Result) ResponseTimes() []sim.Time {
	out := make([]sim.Time, len(r.Done))
	for i := range r.Done {
		out[i] = r.Done[i] - r.Start[i]
	}
	return out
}

// MeanResponse returns the mean response time, skipping the first
// query (pipeline warm-up).
func (r Result) MeanResponse() sim.Time {
	if len(r.Done) <= 1 {
		if len(r.Done) == 1 {
			return r.Done[0] - r.Start[0]
		}
		return 0
	}
	var sum sim.Time
	for i := 1; i < len(r.Done); i++ {
		sum += r.Done[i] - r.Start[i]
	}
	return sum / sim.Time(len(r.Done)-1)
}

// UpdatesPerSec returns the steady-state completion rate at the
// visualization filter, skipping the first completion (pipeline fill).
func (r Result) UpdatesPerSec() float64 {
	n := len(r.Done)
	if n < 3 {
		if n == 2 {
			return 1 / (r.Done[1] - r.Done[0]).Seconds()
		}
		return 0
	}
	span := (r.Done[n-1] - r.Done[1]).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(n-2) / span
}

// pipelineApp is the shared state of one run.
type pipelineApp struct {
	cfg     PipelineConfig
	queries []Query
	start   []sim.Time
	done    []sim.Time

	// update-rate accounting (UpdatePeriod armed): blocks and degraded
	// blocks the visualization filter received per query.
	blocks   []int
	degraded []int

	// sequential-mode gating: an interactive client submits query i
	// only after query i-1 completed.
	completed int
	gate      *sim.Cond
}

// deadline returns query uow's guarantee (0 when not armed).
func (app *pipelineApp) deadline(uow int) sim.Time {
	if app.cfg.UpdatePeriod == 0 {
		return 0
	}
	return sim.Time(uow)*app.cfg.ArrivalPeriod + app.cfg.UpdatePeriod
}

// RunPipeline executes the Figure 5 pipeline over the given query
// sequence and returns its timings.
func RunPipeline(cfg PipelineConfig, queries []Query) Result {
	if cfg.Chains <= 0 || cfg.BlockSize <= 0 || cfg.ImageBytes <= 0 {
		panic("vizapp: invalid pipeline config")
	}
	if len(queries) == 0 {
		panic("vizapp: no queries")
	}
	if cfg.UpdatePeriod > 0 && cfg.ArrivalPeriod == 0 {
		panic("vizapp: UpdatePeriod requires ArrivalPeriod")
	}
	k := sim.NewKernel()
	if cfg.Hook != nil {
		cfg.Hook(k)
	}
	net := netsim.New(k, cfg.Prof.Wire)
	cl := cluster.New(k, net)

	repoNodes := make([]string, cfg.Chains)
	f1Nodes := make([]string, cfg.Chains)
	f2Nodes := make([]string, cfg.Chains)
	for i := 0; i < cfg.Chains; i++ {
		repoNodes[i] = fmt.Sprintf("repo%d", i)
		f1Nodes[i] = fmt.Sprintf("f1n%d", i)
		f2Nodes[i] = fmt.Sprintf("f2n%d", i)
		cl.AddNode(repoNodes[i], cluster.DefaultConfig())
		cl.AddNode(f1Nodes[i], cluster.DefaultConfig())
		cl.AddNode(f2Nodes[i], cluster.DefaultConfig())
	}
	cl.AddNode("viz", cluster.DefaultConfig())

	fab := core.NewFabric(cl, cfg.Kind, cfg.Prof)
	rt := datacutter.NewRuntime(cl, fab)

	app := &pipelineApp{
		cfg:      cfg,
		queries:  queries,
		start:    make([]sim.Time, len(queries)),
		done:     make([]sim.Time, len(queries)),
		blocks:   make([]int, len(queries)),
		degraded: make([]int, len(queries)),
		gate:     sim.NewCond(k),
	}
	app.gate.SetLabel("vizapp/query-gate")

	stream := func(name, from, to string) datacutter.StreamSpec {
		return datacutter.StreamSpec{
			Name: name, From: from, To: to,
			Deadlines:    cfg.UpdatePeriod > 0,
			Shed:         cfg.Shed,
			CreditWindow: cfg.CreditWindow,
		}
	}
	spec := datacutter.GroupSpec{
		Filters: []datacutter.FilterSpec{
			{Name: "repo", New: app.newRepo, Placement: repoNodes, InboxDepth: cfg.InboxDepth},
			{Name: "clip", New: app.newRelay("s1", "s2"), Placement: f1Nodes, InboxDepth: cfg.InboxDepth},
			{Name: "subsample", New: app.newRelay("s2", "s3"), Placement: f2Nodes, InboxDepth: cfg.InboxDepth},
			{Name: "viz", New: app.newViz, Placement: []string{"viz"}, InboxDepth: cfg.InboxDepth},
		},
		Streams: []datacutter.StreamSpec{
			stream("s1", "repo", "clip"),
			stream("s2", "clip", "subsample"),
			stream("s3", "subsample", "viz"),
		},
	}
	g := rt.Instantiate(spec)
	g.Start(len(queries))
	end := k.RunAll()
	util := make(map[string]float64, len(cl.Nodes()))
	for _, node := range cl.Nodes() {
		util[node.Name()] = node.CPU().Utilization()
	}
	res := Result{Start: app.start, Done: app.done, End: end, Utilization: util, Err: g.Err()}
	if cfg.UpdatePeriod > 0 {
		res.Deadlines = make([]sim.Time, len(queries))
		res.Expected = make([]int, len(queries))
		for i, q := range queries {
			res.Deadlines[i] = app.deadline(i)
			for b := 0; b < q.Blocks; b++ {
				if app.blockBytes(b, q.Blocks) > 0 {
					res.Expected[i]++
				}
			}
		}
		res.Blocks = app.blocks
		res.DegradedBlocks = app.degraded
		for _, sn := range []string{"s1", "s2", "s3"} {
			var from string
			switch sn {
			case "s1":
				from = "repo"
			case "s2":
				from = "clip"
			default:
				from = "subsample"
			}
			var to string
			switch sn {
			case "s1":
				to = "clip"
			case "s2":
				to = "subsample"
			default:
				to = "viz"
			}
			for c := 0; c < g.Copies(from); c++ {
				w := g.WriterOf(from, c, sn)
				res.ShedSend += w.ShedAtSend()
				res.DegradedSent += w.DegradedAtSend()
			}
			for c := 0; c < g.Copies(to); c++ {
				res.ShedInbox += g.ReaderOf(to, c, sn).ShedTotal()
			}
		}
	}
	if !g.Done().Fired() && res.Err == nil {
		res.Err = fmt.Errorf("vizapp: pipeline deadlocked at %v", end)
	}
	return res
}

// repoFilter is one data-repository copy: it retrieves its share of
// the query's blocks and streams them down its chain.
type repoFilter struct {
	app  *pipelineApp
	copy int
}

func (app *pipelineApp) newRepo(copy int) datacutter.Filter {
	return &repoFilter{app: app, copy: copy}
}

// holdUntil sleeps to an absolute virtual time. Blocking goes through
// the explicit proc argument, per the sim discipline.
func holdUntil(p *sim.Proc, target sim.Time) { p.Sleep(target - p.Now()) }

func (f *repoFilter) Init(ctx *datacutter.Context) error {
	uow := ctx.UOW()
	if f.app.cfg.Sequential {
		for f.app.completed < uow {
			f.app.gate.Wait(ctx.Proc())
		}
	}
	if ap := f.app.cfg.ArrivalPeriod; ap > 0 {
		// Paced load: query uow arrives at uow*ap; wait for it.
		if target := sim.Time(uow) * ap; ctx.Now() < target {
			holdUntil(ctx.Proc(), target)
		}
	}
	if f.copy == 0 {
		f.app.start[uow] = ctx.Now()
	}
	return nil
}

func (f *repoFilter) Process(ctx *datacutter.Context) error {
	app := f.app
	q := app.queries[ctx.UOW()]
	out := ctx.Output("s1")
	_, chains := ctx.Copy()
	// Blocks are declustered round-robin across repository copies.
	for b := f.copy; b < q.Blocks; b += chains {
		size := app.blockBytes(b, q.Blocks)
		if size == 0 {
			continue
		}
		buf := &datacutter.Buffer{Size: size, Tag: int64(b), Deadline: app.deadline(ctx.UOW())}
		if err := out.WriteTo(ctx.Proc(), f.copy, buf); err != nil {
			return err
		}
	}
	return out.EndOfWork(ctx.Proc())
}

func (f *repoFilter) Finalize(ctx *datacutter.Context) error { return nil }

// blockBytes sizes block b of a query: every block is BlockSize except
// that a complete update's final block carries the image remainder.
func (app *pipelineApp) blockBytes(b, blocks int) int {
	cfg := app.cfg
	if blocks == cfg.CompleteBlocks() && b == blocks-1 {
		rem := cfg.ImageBytes - (blocks-1)*cfg.BlockSize
		return rem
	}
	return cfg.BlockSize
}

// relayFilter is a processing stage (Clipping, Subsampling): it
// applies the per-byte computation and forwards each block down its
// own chain.
type relayFilter struct {
	app     *pipelineApp
	copy    int
	in, out string
}

func (app *pipelineApp) newRelay(in, out string) func(int) datacutter.Filter {
	return func(copy int) datacutter.Filter {
		return &relayFilter{app: app, copy: copy, in: in, out: out}
	}
}

func (f *relayFilter) Init(ctx *datacutter.Context) error { return nil }

func (f *relayFilter) Process(ctx *datacutter.Context) error {
	in, out := ctx.Input(f.in), ctx.Output(f.out)
	for {
		b, ok := in.Read(ctx.Proc())
		if !ok {
			return out.EndOfWork(ctx.Proc())
		}
		if cpb := f.app.cfg.ComputePerByte; cpb > 0 {
			ctx.Compute(sim.Time(b.Size) * cpb)
		}
		// Stay on this copy's chain; converge when the next stage has
		// fewer copies (the single visualization filter). The deadline
		// and degradation travel with the block.
		target := f.copy % out.Targets()
		fwd := &datacutter.Buffer{Size: b.Size, Tag: b.Tag, Deadline: b.Deadline, Degraded: b.Degraded}
		if err := out.WriteTo(ctx.Proc(), target, fwd); err != nil {
			return err
		}
	}
}

func (f *relayFilter) Finalize(ctx *datacutter.Context) error { return nil }

// vizFilter is the visualization server: it consumes every block of
// the query, applies its computation and records the completion time.
type vizFilter struct {
	app *pipelineApp
}

func (app *pipelineApp) newViz(int) datacutter.Filter { return &vizFilter{app: app} }

func (f *vizFilter) Init(ctx *datacutter.Context) error { return nil }

func (f *vizFilter) Process(ctx *datacutter.Context) error {
	in := ctx.Input("s3")
	uow := ctx.UOW()
	for {
		b, ok := in.Read(ctx.Proc())
		if !ok {
			break
		}
		if cpb := f.app.cfg.ComputePerByte; cpb > 0 {
			ctx.Compute(sim.Time(b.Size) * cpb)
		}
		f.app.blocks[uow]++
		if b.Degraded {
			f.app.degraded[uow]++
		}
	}
	f.app.done[uow] = ctx.Now()
	f.app.completed = uow + 1
	f.app.gate.Broadcast()
	return nil
}

func (f *vizFilter) Finalize(ctx *datacutter.Context) error { return nil }
