package vizapp

import (
	"fmt"

	"hpsockets/internal/sim"
)

// Session drives an interactive microscope viewport over a 2-D
// dataset: the paper's "continuously moving the stage and changing
// magnification". Each interaction produces the set of blocks the
// server must retrieve, which the Figure 5 pipeline then serves.
type Session struct {
	DS   *Dataset
	View Rect
}

// Interaction is one user action at the microscope.
type Interaction struct {
	// Kind is "open", "pan" or "zoom".
	Kind string
	// DX and DY are the pan offsets in pixels.
	DX, DY int
	// Factor is the zoom factor (>1 zooms in, halving the viewport
	// extent per factor of 2).
	Factor int
}

// Open starts viewing the whole image.
func Open() Interaction { return Interaction{Kind: "open"} }

// Pan moves the viewport by (dx, dy) pixels.
func Pan(dx, dy int) Interaction { return Interaction{Kind: "pan", DX: dx, DY: dy} }

// Zoom magnifies by the given factor around the viewport center.
func Zoom(factor int) Interaction { return Interaction{Kind: "zoom", Factor: factor} }

// step applies one interaction and reports the regions that must be
// freshly fetched.
func (s *Session) step(op Interaction) []Rect {
	switch op.Kind {
	case "open":
		s.View = s.DS.Bounds()
		return []Rect{s.View}
	case "pan":
		regions := PanQuery(s.View, op.DX, op.DY)
		s.View = Rect{s.View.X0 + op.DX, s.View.Y0 + op.DY, s.View.X1 + op.DX, s.View.Y1 + op.DY}.
			Intersect(s.DS.Bounds())
		// Clip the fetch regions to the image too.
		out := regions[:0]
		for _, r := range regions {
			if c := r.Intersect(s.DS.Bounds()); !c.Empty() {
				out = append(out, c)
			}
		}
		return out
	case "zoom":
		if op.Factor <= 1 {
			return nil
		}
		w, h := s.View.Width()/op.Factor, s.View.Height()/op.Factor
		cx, cy := (s.View.X0+s.View.X1)/2, (s.View.Y0+s.View.Y1)/2
		s.View = Rect{cx - w/2, cy - h/2, cx + w/2, cy + h/2}.Intersect(s.DS.Bounds())
		// Magnification projects higher-resolution data for the new
		// viewport: fetch it afresh.
		return []Rect{s.View}
	}
	panic("vizapp: unknown interaction " + op.Kind)
}

// SessionStep records one served interaction.
type SessionStep struct {
	Op       Interaction
	Blocks   int
	Fetched  int
	Wasted   int
	Response sim.Time
}

// SessionResult is a served interaction script.
type SessionResult struct {
	Steps []SessionStep
	Err   error
}

// RunSession serves an interaction script through the Figure 5
// pipeline on the given transport. The dataset's block geometry sets
// both the distribution block size and, per interaction, the number of
// blocks retrieved (including the unnecessary data whole-block
// fetching drags along).
func RunSession(cfg PipelineConfig, ds *Dataset, script []Interaction) SessionResult {
	if len(script) == 0 {
		panic("vizapp: empty session script")
	}
	blockBytes := ds.BlockPxW * ds.BlockPxH * ds.BytesPerPixel
	cfg.BlockSize = blockBytes
	cfg.ImageBytes = ds.TotalBytes()
	cfg.Sequential = true

	s := &Session{DS: ds}
	steps := make([]SessionStep, len(script))
	queries := make([]Query, len(script))
	for i, op := range script {
		seen := map[int]bool{}
		fetched := 0
		wasted := 0
		for _, r := range s.step(op) {
			for _, b := range ds.BlocksFor(r) {
				if !seen[b] {
					seen[b] = true
					fetched += ds.BlockBytes(b)
				}
			}
			wasted += ds.WastedBytes(r)
		}
		n := len(seen)
		if n == 0 {
			n = 1 // a no-op interaction still round-trips one block
			fetched = blockBytes
		}
		steps[i] = SessionStep{Op: op, Blocks: n, Fetched: fetched, Wasted: wasted}
		queries[i] = Query{Blocks: n}
	}

	res := RunPipeline(cfg, queries)
	if res.Err != nil {
		return SessionResult{Steps: steps, Err: res.Err}
	}
	for i, rt := range res.ResponseTimes() {
		steps[i].Response = rt
	}
	return SessionResult{Steps: steps}
}

// Describe renders an interaction for reports.
func (op Interaction) Describe() string {
	switch op.Kind {
	case "open":
		return "open slide"
	case "pan":
		return fmt.Sprintf("pan (%+d,%+d)", op.DX, op.DY)
	case "zoom":
		return fmt.Sprintf("zoom %dx", op.Factor)
	}
	return op.Kind
}
