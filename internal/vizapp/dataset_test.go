package vizapp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// testDS is a 4096x4096, 1 B/px image in 512x512 blocks: 16 MB, 64
// blocks — the paper's evaluation image with 64 partitions.
func testDS() *Dataset { return NewDataset(4096, 4096, 1, 512, 512) }

func TestDatasetGeometry(t *testing.T) {
	d := testDS()
	if d.GridW() != 8 || d.GridH() != 8 || d.Blocks() != 64 {
		t.Fatalf("grid = %dx%d (%d blocks)", d.GridW(), d.GridH(), d.Blocks())
	}
	if d.TotalBytes() != 16<<20 {
		t.Fatalf("total = %d, want 16MB", d.TotalBytes())
	}
	if d.BlockBytes(0) != 512*512 {
		t.Fatalf("block bytes = %d", d.BlockBytes(0))
	}
}

func TestBlockRectRowMajor(t *testing.T) {
	d := testDS()
	r := d.BlockRect(9) // second row, second column
	want := Rect{512, 512, 1024, 1024}
	if r != want {
		t.Fatalf("BlockRect(9) = %+v, want %+v", r, want)
	}
}

func TestEdgeBlocksClipped(t *testing.T) {
	d := NewDataset(1000, 700, 2, 512, 512)
	if d.GridW() != 2 || d.GridH() != 2 {
		t.Fatalf("grid = %dx%d", d.GridW(), d.GridH())
	}
	// Bottom-right block is 488x188 pixels.
	if got := d.BlockBytes(3); got != 488*188*2 {
		t.Fatalf("edge block bytes = %d, want %d", got, 488*188*2)
	}
	// Sum of all blocks equals the image.
	sum := 0
	for b := 0; b < d.Blocks(); b++ {
		sum += d.BlockBytes(b)
	}
	if sum != d.TotalBytes() {
		t.Fatalf("blocks sum to %d, image is %d", sum, d.TotalBytes())
	}
}

func TestBlocksForPartialQuery(t *testing.T) {
	d := testDS()
	// The Figure 1 dotted rectangle: a small region inside one block.
	blocks := d.BlocksFor(Rect{100, 100, 200, 200})
	if len(blocks) != 1 || blocks[0] != 0 {
		t.Fatalf("blocks = %v, want [0]", blocks)
	}
	// A region straddling a 2x2 block corner.
	blocks = d.BlocksFor(Rect{500, 500, 600, 600})
	if len(blocks) != 4 {
		t.Fatalf("corner query blocks = %v, want 4", blocks)
	}
	// The whole image.
	if got := d.BlocksFor(d.Bounds()); len(got) != 64 {
		t.Fatalf("complete query blocks = %d, want 64", len(got))
	}
}

func TestWastedBytesShrinkWithBlockSize(t *testing.T) {
	q := Rect{100, 100, 228, 228} // 128x128 region
	coarse := NewDataset(4096, 4096, 1, 2048, 2048)
	fine := NewDataset(4096, 4096, 1, 256, 256)
	wc, wf := coarse.WastedBytes(q), fine.WastedBytes(q)
	if wf >= wc {
		t.Fatalf("fine blocks waste %d !< coarse %d", wf, wc)
	}
	if coarse.FetchBytes(q) != 2048*2048 {
		t.Fatalf("coarse fetch = %d", coarse.FetchBytes(q))
	}
}

func TestPanQueryExcessStrips(t *testing.T) {
	view := Rect{0, 0, 1024, 1024}
	// Pan right by 512: one 512-wide strip.
	strips := PanQuery(view, 512, 0)
	if len(strips) != 1 || strips[0] != (Rect{1024, 0, 1536, 1024}) {
		t.Fatalf("strips = %+v", strips)
	}
	// Diagonal pan: two strips.
	strips = PanQuery(view, 256, 256)
	if len(strips) != 2 {
		t.Fatalf("diagonal strips = %+v", strips)
	}
	total := 0
	for _, s := range strips {
		total += s.Pixels()
	}
	// Excess area of a diagonal pan: new - overlap.
	want := 1024*1024 - 768*768
	if total != want {
		t.Fatalf("excess pixels = %d, want %d", total, want)
	}
	// No movement: nothing to fetch.
	if got := PanQuery(view, 0, 0); len(got) != 0 {
		t.Fatalf("no-op pan = %+v", got)
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 20, 20}
	if got := a.Intersect(b); got != (Rect{5, 5, 10, 10}) {
		t.Fatalf("intersect = %+v", got)
	}
	if got := a.Intersect(Rect{20, 20, 30, 30}); !got.Empty() {
		t.Fatalf("disjoint intersect = %+v", got)
	}
}

func TestPropertyFetchCoversQuery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDataset(rng.Intn(2000)+100, rng.Intn(2000)+100, rng.Intn(3)+1,
			rng.Intn(300)+10, rng.Intn(300)+10)
		x0, y0 := rng.Intn(d.WidthPx), rng.Intn(d.HeightPx)
		q := Rect{x0, y0, x0 + rng.Intn(d.WidthPx), y0 + rng.Intn(d.HeightPx)}
		q = q.Intersect(d.Bounds())
		blocks := d.BlocksFor(q)
		// Invariant 1: fetched >= useful (waste never negative).
		if d.WastedBytes(q) < 0 {
			return false
		}
		// Invariant 2: union of fetched blocks covers the query: every
		// query pixel count is accounted by block/query intersections.
		covered := 0
		for _, b := range blocks {
			covered += d.BlockRect(b).Intersect(q).Pixels()
		}
		if covered != q.Pixels() {
			return false
		}
		// Invariant 3: no duplicate blocks.
		seen := map[int]bool{}
		for _, b := range blocks {
			if seen[b] {
				return false
			}
			seen[b] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
