package vizapp

import (
	"fmt"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/datacutter"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// LBConfig describes one Figure 6 load-balancer run: a data repository
// (which is also the load balancer) distributing blocks to compute
// filters, one of which may be slow.
type LBConfig struct {
	Kind core.Kind
	Prof core.Profile
	// Computes is the number of compute filter copies (3).
	Computes int
	// BlockSize is the scheduling granularity; TotalBytes the workload
	// volume.
	BlockSize  int
	TotalBytes int
	// ComputePerByte is the processing cost (18 ns/byte).
	ComputePerByte sim.Time
	// Policy selects round-robin or demand-driven distribution.
	Policy datacutter.Policy
	// RecordAcks turns on begin-of-processing acknowledgments and
	// send-to-ack latency recording (the Figure 10 instrument).
	RecordAcks bool
	// SlowNode (index into the compute copies, -1 for none) is slowed
	// by SlowFactor; if SlowProb > 0 the slowdown applies per block
	// with that probability (Figure 11), otherwise statically
	// (Figure 10).
	SlowNode   int
	SlowFactor float64
	SlowProb   float64
	Seed       int64
	// DataLocal moves the dataset onto the compute nodes (declustered
	// storage): the balancer ships DirectiveBytes-sized scheduling
	// directives instead of block data, and each compute filter
	// processes its block from local storage. The paper's
	// heterogeneity experiments are compute-bound at 16 MB, which
	// implies this arrangement; see EXPERIMENTS.md.
	DataLocal      bool
	DirectiveBytes int
	// MaxUnacked is the demand window of the demand-driven scheduler
	// (see datacutter.StreamSpec.MaxUnacked).
	MaxUnacked int
}

// DefaultLBConfig returns the paper's load-balancing setup for the
// given transport and block size.
func DefaultLBConfig(kind core.Kind, blockSize int) LBConfig {
	return LBConfig{
		Kind:           kind,
		Prof:           core.CLANProfile(),
		Computes:       3,
		BlockSize:      blockSize,
		TotalBytes:     16 << 20,
		ComputePerByte: 18 * sim.Nanosecond,
		Policy:         datacutter.DemandDriven,
		SlowNode:       -1,
		SlowFactor:     1,
		Seed:           1,
		DirectiveBytes: 64,
		MaxUnacked:     2,
	}
}

// LBResult carries the measurements of one load-balancer run.
type LBResult struct {
	// Makespan is from the load balancer's first send to the last
	// compute filter finishing its last block.
	Makespan sim.Time
	// BlocksPerNode counts blocks processed by each compute copy.
	BlocksPerNode []int
	// AckLatencies holds per-target send-to-ack latencies when
	// RecordAcks is set.
	AckLatencies [][]sim.Time
	Err          error
}

// FirstAckLatency returns the send-to-ack latency of the first block
// routed to one compute copy: the time until the load balancer could
// first learn that the target was slow, before any backlog forms.
func (r LBResult) FirstAckLatency(target int) sim.Time {
	ls := r.AckLatencies[target]
	if len(ls) == 0 {
		return 0
	}
	return ls[0]
}

// ReactionTime returns the send-to-ack latency of the second block
// routed to one compute copy. Acks fire when a consumer begins
// processing, so the second block's ack is the first one delayed by
// the slow node chewing on the balancer's mistake: it is the earliest
// signal the balancer could react to.
func (r LBResult) ReactionTime(target int) sim.Time {
	ls := r.AckLatencies[target]
	if len(ls) >= 2 {
		return ls[1]
	}
	return r.FirstAckLatency(target)
}

// MeanAckLatency returns the mean send-to-ack latency toward one
// compute copy.
func (r LBResult) MeanAckLatency(target int) sim.Time {
	ls := r.AckLatencies[target]
	if len(ls) == 0 {
		return 0
	}
	var sum sim.Time
	for _, l := range ls {
		sum += l
	}
	return sum / sim.Time(len(ls))
}

// lbApp is the shared state of one run.
type lbApp struct {
	cfg      LBConfig
	startAt  sim.Time
	finishAt []sim.Time
	counts   []int
}

// RunLoadBalancer executes one Figure 6 run.
func RunLoadBalancer(cfg LBConfig) LBResult {
	if cfg.Computes <= 0 || cfg.BlockSize <= 0 || cfg.TotalBytes <= 0 {
		panic("vizapp: invalid LB config")
	}
	k := sim.NewKernel()
	net := netsim.New(k, cfg.Prof.Wire)
	cl := cluster.New(k, net)
	cl.AddNode("lb", cluster.DefaultConfig())
	computeNodes := make([]string, cfg.Computes)
	for i := range computeNodes {
		computeNodes[i] = fmt.Sprintf("comp%d", i)
		node := cl.AddNode(computeNodes[i], cluster.DefaultConfig())
		if i == cfg.SlowNode && cfg.SlowFactor > 1 {
			if cfg.SlowProb > 0 {
				node.SetProbabilisticSlowdown(cfg.SlowFactor, cfg.SlowProb, cfg.Seed)
			} else {
				node.SetSlowFactor(cfg.SlowFactor)
			}
		}
	}
	fab := core.NewFabric(cl, cfg.Kind, cfg.Prof)
	rt := datacutter.NewRuntime(cl, fab)

	app := &lbApp{
		cfg:      cfg,
		finishAt: make([]sim.Time, cfg.Computes),
		counts:   make([]int, cfg.Computes),
	}

	g := rt.Instantiate(datacutter.GroupSpec{
		Filters: []datacutter.FilterSpec{
			{Name: "lb", New: app.newLB, Placement: []string{"lb"}},
			{Name: "compute", New: app.newCompute, Placement: computeNodes, InboxDepth: 1},
		},
		Streams: []datacutter.StreamSpec{{
			Name: "work", From: "lb", To: "compute",
			Policy:           cfg.Policy,
			Acks:             cfg.RecordAcks,
			RecordAckLatency: cfg.RecordAcks,
			MaxUnacked:       cfg.MaxUnacked,
		}},
	})
	g.Start(1)
	k.RunAll()

	res := LBResult{BlocksPerNode: app.counts, Err: g.Err()}
	if !g.Done().Fired() && res.Err == nil {
		res.Err = fmt.Errorf("vizapp: load balancer deadlocked")
	}
	var last sim.Time
	for _, t := range app.finishAt {
		if t > last {
			last = t
		}
	}
	res.Makespan = last - app.startAt
	if cfg.RecordAcks {
		w := g.WriterOf("lb", 0, "work")
		res.AckLatencies = make([][]sim.Time, cfg.Computes)
		for i := 0; i < cfg.Computes; i++ {
			res.AckLatencies[i] = w.AckLatencies(i)
		}
	}
	return res
}

// lbFilter is the load balancer: it streams the dataset's blocks to
// the compute copies under the configured policy.
type lbFilter struct{ app *lbApp }

func (app *lbApp) newLB(int) datacutter.Filter { return &lbFilter{app: app} }

func (f *lbFilter) Init(ctx *datacutter.Context) error { return nil }

func (f *lbFilter) Process(ctx *datacutter.Context) error {
	cfg := f.app.cfg
	out := ctx.Output("work")
	f.app.startAt = ctx.Now()
	blocks := (cfg.TotalBytes + cfg.BlockSize - 1) / cfg.BlockSize
	for b := 0; b < blocks; b++ {
		size := cfg.BlockSize
		if b == blocks-1 {
			size = cfg.TotalBytes - (blocks-1)*cfg.BlockSize
		}
		buf := &datacutter.Buffer{Size: size, Tag: int64(size)}
		if cfg.DataLocal {
			// Ship only the scheduling directive; the block's bytes
			// live on the compute node.
			buf.Size = cfg.DirectiveBytes
		}
		if err := out.Write(ctx.Proc(), buf); err != nil {
			return err
		}
	}
	return out.EndOfWork(ctx.Proc())
}

func (f *lbFilter) Finalize(ctx *datacutter.Context) error { return nil }

// computeFilter processes blocks at the configured cost, subject to
// its node's heterogeneity model.
type computeFilter struct {
	app  *lbApp
	copy int
}

func (app *lbApp) newCompute(copy int) datacutter.Filter {
	return &computeFilter{app: app, copy: copy}
}

func (f *computeFilter) Init(ctx *datacutter.Context) error { return nil }

func (f *computeFilter) Process(ctx *datacutter.Context) error {
	in := ctx.Input("work")
	for {
		b, ok := in.Read(ctx.Proc())
		if !ok {
			f.app.finishAt[f.copy] = ctx.Now()
			return nil
		}
		ctx.Compute(sim.Time(b.Tag) * f.app.cfg.ComputePerByte)
		f.app.counts[f.copy]++
	}
}

func (f *computeFilter) Finalize(ctx *datacutter.Context) error { return nil }
