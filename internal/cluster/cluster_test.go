package cluster

import (
	"testing"

	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

func testCluster(k *sim.Kernel) *Cluster {
	net := netsim.New(k, netsim.CLANConfig())
	return New(k, net)
}

func TestComputeTakesNominalTime(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k)
	n := c.AddNode("n0", DefaultConfig())
	var done sim.Time
	k.Go("w", func(p *sim.Proc) {
		n.Compute(p, 100*sim.Microsecond)
		done = p.Now()
	})
	k.RunAll()
	if done != 100*sim.Microsecond {
		t.Fatalf("done at %v, want 100us", done)
	}
}

func TestComputeScalesWithSlowFactor(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k)
	n := c.AddNode("n0", DefaultConfig())
	n.SetSlowFactor(4)
	var done sim.Time
	k.Go("w", func(p *sim.Proc) {
		n.Compute(p, 10*sim.Microsecond)
		done = p.Now()
	})
	k.RunAll()
	if done != 40*sim.Microsecond {
		t.Fatalf("done at %v, want 40us", done)
	}
}

func TestOverheadUnaffectedBySlowFactor(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k)
	n := c.AddNode("n0", DefaultConfig())
	n.SetSlowFactor(8)
	var done sim.Time
	k.Go("w", func(p *sim.Proc) {
		n.Overhead(p, 10*sim.Microsecond)
		done = p.Now()
	})
	k.RunAll()
	if done != 10*sim.Microsecond {
		t.Fatalf("done at %v, want 10us (overhead must not scale)", done)
	}
}

func TestDualCPUAllowsTwoParallelComputations(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k)
	n := c.AddNode("n0", Config{CPUsPerNode: 2})
	var ends []sim.Time
	for i := 0; i < 4; i++ {
		k.Go("w", func(p *sim.Proc) {
			n.Compute(p, 10)
			ends = append(ends, p.Now())
		})
	}
	k.RunAll()
	want := []sim.Time{10, 10, 20, 20}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestProbabilisticSlowdownIsDeterministic(t *testing.T) {
	run := func() sim.Time {
		k := sim.NewKernel()
		c := testCluster(k)
		n := c.AddNode("n0", DefaultConfig())
		n.SetProbabilisticSlowdown(4, 0.5, 42)
		k.Go("w", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				n.Compute(p, 10)
			}
		})
		return k.RunAll()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("runs differ: %v vs %v", a, b)
	}
	// With p=0.5 and factor 4, expected total is 100*10*2.5 = 2500;
	// allow generous slack for the finite sample.
	if a < 1800 || a > 3200 {
		t.Fatalf("total = %v, want around 2500", a)
	}
}

func TestProbabilisticSlowdownZeroProbIsNominal(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k)
	n := c.AddNode("n0", DefaultConfig())
	n.SetProbabilisticSlowdown(8, 0, 1)
	k.Go("w", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			n.Compute(p, 10)
		}
	})
	if end := k.RunAll(); end != 100 {
		t.Fatalf("end = %v, want 100", end)
	}
}

func TestZeroComputeIsFree(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k)
	n := c.AddNode("n0", DefaultConfig())
	k.Go("w", func(p *sim.Proc) { n.Compute(p, 0) })
	if end := k.RunAll(); end != 0 {
		t.Fatalf("end = %v, want 0", end)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k)
	c.AddNode("n0", DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddNode did not panic")
		}
	}()
	c.AddNode("n0", DefaultConfig())
}

func TestNodeLookupAndOrder(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k)
	for _, name := range []string{"a", "b", "c"} {
		c.AddNode(name, DefaultConfig())
	}
	if c.Node("b") == nil || c.Node("b").Name() != "b" {
		t.Fatal("Node lookup failed")
	}
	if c.Node("zzz") != nil {
		t.Fatal("unknown node not nil")
	}
	nodes := c.Nodes()
	if len(nodes) != 3 || nodes[0].Name() != "a" || nodes[2].Name() != "c" {
		t.Fatalf("order = %v", nodes)
	}
}

func TestComputeBusyAccounting(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k)
	n := c.AddNode("n0", DefaultConfig())
	n.SetSlowFactor(2)
	k.Go("w", func(p *sim.Proc) {
		n.Compute(p, 10)
		n.Compute(p, 10)
	})
	k.RunAll()
	if n.ComputeBusy() != 40 {
		t.Fatalf("busy = %v, want 40", n.ComputeBusy())
	}
}
