// Package cluster models the compute side of the testbed: nodes with
// a fixed number of CPUs, attached to the interconnect, with optional
// heterogeneity in processing speed.
//
// The paper's cluster is 16 dual-1GHz-PIII nodes; heterogeneity is
// emulated (as in the paper) by making some nodes process data more
// than once, i.e. by scaling computation time while communication
// costs stay constant.
package cluster

import (
	"fmt"
	"math/rand"

	"hpsockets/internal/hpsmon"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

// Node is one machine in the cluster.
type Node struct {
	name string
	k    *sim.Kernel
	cpu  *sim.Resource
	port *netsim.Port

	// factor scales computation time (1 = nominal). The paper's
	// "factor of heterogeneity" is the ratio of the fastest to the
	// slowest node's processing speed.
	factor float64
	// slowProb makes the node slow probabilistically, per unit of
	// work: with probability slowProb a computation takes factor times
	// longer, otherwise it runs at nominal speed (Figure 11 setup).
	slowProb float64
	rng      *rand.Rand

	// failed marks a crashed node: its CPUs never finish another unit
	// of work and the fault injector discards all its traffic.
	failed bool
	// revive wakes procs halted by the current crash; Restart fires it.
	// One signal per crash epoch: a signal fires at most once.
	revive *sim.Signal
	// restartHooks run inside each Restart instant, in registration
	// order. They execute in kernel-callback context and must not block.
	restartHooks []func()
	restarts     int

	computeBusy sim.Time // total CPU time spent in Compute
}

// Cluster is a set of nodes sharing a kernel and a network.
type Cluster struct {
	k     *sim.Kernel
	net   *netsim.Network
	nodes map[string]*Node
	order []*Node
}

// Config describes node hardware.
type Config struct {
	// CPUsPerNode is the number of processors per node (2 in the
	// testbed's dual-PIII nodes).
	CPUsPerNode int
}

// DefaultConfig matches the paper's testbed.
func DefaultConfig() Config { return Config{CPUsPerNode: 2} }

// New returns an empty cluster.
func New(k *sim.Kernel, net *netsim.Network) *Cluster {
	return &Cluster{k: k, net: net, nodes: make(map[string]*Node)}
}

// Kernel reports the cluster's simulation kernel.
func (c *Cluster) Kernel() *sim.Kernel { return c.k }

// Network reports the cluster's interconnect.
func (c *Cluster) Network() *netsim.Network { return c.net }

// AddNode creates a node with the given name and hardware config.
func (c *Cluster) AddNode(name string, cfg Config) *Node {
	if _, ok := c.nodes[name]; ok {
		panic(fmt.Sprintf("cluster: duplicate node %q", name))
	}
	if cfg.CPUsPerNode <= 0 {
		panic("cluster: node needs at least one CPU")
	}
	n := &Node{
		name:   name,
		k:      c.k,
		cpu:    sim.NewResource(c.k, cfg.CPUsPerNode),
		port:   c.net.Attach(name),
		factor: 1,
	}
	n.cpu.SetLabel("cluster/cpu")
	c.nodes[name] = n
	c.order = append(c.order, n)
	return n
}

// Node returns the named node, or nil.
func (c *Cluster) Node(name string) *Node { return c.nodes[name] }

// Nodes returns all nodes in creation order.
func (c *Cluster) Nodes() []*Node { return c.order }

// Name reports the node name.
func (n *Node) Name() string { return n.name }

// Kernel reports the node's simulation kernel.
func (n *Node) Kernel() *sim.Kernel { return n.k }

// CPU reports the node's CPU resource. Protocol stacks and application
// computation share it, as they do on real hosts.
func (n *Node) CPU() *sim.Resource { return n.cpu }

// Port reports the node's network port.
func (n *Node) Port() *netsim.Port { return n.port }

// SetSlowFactor makes every computation on the node take factor times
// its nominal duration. Communication processing is not scaled: the
// paper's heterogeneity emulation repeats only the data processing.
func (n *Node) SetSlowFactor(factor float64) {
	if factor < 1 {
		panic("cluster: slow factor below 1")
	}
	n.factor = factor
}

// SetProbabilisticSlowdown makes the node slow (by factor) with the
// given probability independently for each computation, using a
// deterministic seed.
func (n *Node) SetProbabilisticSlowdown(factor, prob float64, seed int64) {
	if factor < 1 || prob < 0 || prob > 1 {
		panic("cluster: bad probabilistic slowdown parameters")
	}
	n.factor = factor
	n.slowProb = prob
	n.rng = rand.New(rand.NewSource(seed))
}

// SlowFactor reports the configured factor.
func (n *Node) SlowFactor() float64 { return n.factor }

// Fail crashes the node at the current instant: every Compute or
// Overhead call from then on parks its proc until the node restarts
// (forever, if it never does), modelling a host that stops
// mid-instruction. Procs already inside a CPU occupancy finish that
// occupancy (the discrete-event equivalent of in-flight work
// draining); they hang at their next CPU use. Frame-level isolation of
// a failed node is the fault injector's job.
func (n *Node) Fail() {
	if n.failed {
		return
	}
	n.failed = true
	n.revive = sim.NewSignal(n.k)
	n.revive.SetLabel("cluster/revive")
}

// Restart revives a crashed node at the current instant: the failed
// flag clears, every proc halted in Compute or Overhead resumes the
// CPU use it was attempting (the OS-reboot view of a protocol stack:
// its processes pick up where the host stopped), and the registered
// OnRestart hooks run in registration order. Restarting a live node is
// a no-op. A node that never restarts behaves exactly as before this
// method existed: the revive signal simply never fires.
func (n *Node) Restart() {
	if !n.failed {
		return
	}
	n.failed = false
	n.restarts++
	sig := n.revive
	n.revive = nil
	if sig != nil {
		sig.Fire(nil)
	}
	for _, fn := range n.restartHooks {
		fn()
	}
}

// OnRestart registers a hook run inside every Restart instant, after
// halted procs have been scheduled to resume. Hooks run in
// kernel-callback context: they may inspect state, fire signals,
// broadcast conds and spawn procs, but must not block.
func (n *Node) OnRestart(fn func()) { n.restartHooks = append(n.restartHooks, fn) }

// Restarts reports how many times the node has been restarted.
func (n *Node) Restarts() int { return n.restarts }

// Failed reports whether the node has crashed.
func (n *Node) Failed() bool { return n.failed }

// haltIfFailed parks p while the node is crashed. Waiting on a signal
// that never fires is safe under RunAll: the kernel simply never
// resumes the proc, and the run terminates when live events drain. A
// Restart fires the signal and the proc resumes; the loop re-checks in
// case the node crashed again in the same instant.
func (n *Node) haltIfFailed(p *sim.Proc) {
	for n.failed {
		n.k.Trace("cluster", "node-halt", 0, n.name+": "+p.Name())
		hpsmon.Instant(p, "cluster", "node-halt", n.name)
		p.Wait(n.revive)
	}
}

// computeScale picks the slowdown for one unit of computation.
func (n *Node) computeScale() float64 {
	if n.rng != nil {
		if n.rng.Float64() < n.slowProb {
			return n.factor
		}
		return 1
	}
	return n.factor
}

// Compute occupies one CPU for the nominal duration scaled by the
// node's heterogeneity model. It blocks p for the scaled duration plus
// any CPU queueing.
func (n *Node) Compute(p *sim.Proc, nominal sim.Time) {
	if nominal < 0 {
		panic("cluster: negative compute time")
	}
	if nominal == 0 {
		return
	}
	n.haltIfFailed(p)
	d := sim.Time(float64(nominal)*n.computeScale() + 0.5)
	n.cpu.Use(p, 1, d)
	n.computeBusy += d
}

// Overhead occupies one CPU for exactly d, unscaled. Protocol
// processing uses this: the paper's emulation slows computation only.
func (n *Node) Overhead(p *sim.Proc, d sim.Time) {
	if d <= 0 {
		return
	}
	n.haltIfFailed(p)
	n.cpu.Use(p, 1, d)
}

// ComputeBusy reports total (scaled) CPU time consumed via Compute.
func (n *Node) ComputeBusy() sim.Time { return n.computeBusy }
