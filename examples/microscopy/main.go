// Microscopy: an interactive digitized-microscopy session against the
// Figure 5 visualization-server pipeline — the paper's motivating
// application.
//
// A pathologist opens a slide (complete update), pans around it
// (partial updates) and zooms in (zoom query). The example runs the
// session over kernel TCP with the coarse partitioning TCP's bandwidth
// profile requires, then over SocketVIA with the dataset repartitioned
// into fine chunks (the paper's "DR"), and prints the per-interaction
// response times.
//
// Run with: go run ./examples/microscopy
package main

import (
	"fmt"

	"hpsockets/internal/core"
	"hpsockets/internal/sim"
	"hpsockets/internal/vizapp"
)

func main() {
	// The paper's digitized slide: 16 MB per viewed image, 18 ns/byte
	// of processing in the visualization chain.
	session := []struct {
		action string
		query  func(cfg vizapp.PipelineConfig) vizapp.Query
	}{
		{"open slide (complete update)", func(cfg vizapp.PipelineConfig) vizapp.Query { return cfg.CompleteQuery() }},
		{"pan right (partial update)", func(vizapp.PipelineConfig) vizapp.Query { return vizapp.PartialQuery() }},
		{"pan down (partial update)", func(vizapp.PipelineConfig) vizapp.Query { return vizapp.PartialQuery() }},
		{"zoom 4x (zoom query)", func(cfg vizapp.PipelineConfig) vizapp.Query { return cfg.ZoomQuery(4) }},
		{"new slide (complete update)", func(cfg vizapp.PipelineConfig) vizapp.Query { return cfg.CompleteQuery() }},
	}

	configs := []struct {
		label string
		kind  core.Kind
		block int
	}{
		{"TCP, 64 KB blocks (bandwidth-oriented partitioning)", core.KindTCP, 64 * 1024},
		{"SocketVIA, 64 KB blocks (no repartitioning)", core.KindSocketVIA, 64 * 1024},
		{"SocketVIA, 2 KB blocks (repartitioned for SocketVIA)", core.KindSocketVIA, 2 * 1024},
	}

	for _, c := range configs {
		cfg := vizapp.DefaultPipelineConfig(c.kind, c.block)
		cfg.ComputePerByte = 18 * sim.Nanosecond
		cfg.Sequential = true // an interactive user issues one query at a time

		queries := make([]vizapp.Query, len(session))
		for i, s := range session {
			queries[i] = s.query(cfg)
		}
		res := vizapp.RunPipeline(cfg, queries)
		if res.Err != nil {
			panic(res.Err)
		}

		fmt.Printf("== %s ==\n", c.label)
		for i, rt := range res.ResponseTimes() {
			fmt.Printf("  %-32s %10v\n", session[i].action, rt)
		}
		fmt.Println()
	}
}
