// Loadbalance: the Figure 6 scenario — a data repository distributing
// work to three compute nodes, one of which turns out to be slow.
//
// The example contrasts round-robin and demand-driven scheduling on
// both transports and shows the two effects the paper reports: the
// demand-driven policy routes work away from the slow node, and the
// finer blocks SocketVIA affords shrink the balancer's reaction time
// to its mistakes by roughly the block-size ratio (8x).
//
// Run with: go run ./examples/loadbalance
package main

import (
	"fmt"

	"hpsockets/internal/core"
	"hpsockets/internal/datacutter"
	"hpsockets/internal/experiments"
	"hpsockets/internal/vizapp"
)

func main() {
	const slowFactor = 4

	for _, kind := range []core.Kind{core.KindTCP, core.KindSocketVIA} {
		block := experiments.PipeliningBlock(kind)
		fmt.Printf("== %s (block size %d bytes, node comp1 is %dx slower) ==\n", kind, block, slowFactor)
		for _, policy := range []datacutter.Policy{datacutter.RoundRobin, datacutter.DemandDriven} {
			cfg := vizapp.DefaultLBConfig(kind, block)
			cfg.Policy = policy
			cfg.RecordAcks = true
			cfg.DataLocal = true
			cfg.SlowNode = 1
			cfg.SlowFactor = slowFactor
			res := vizapp.RunLoadBalancer(cfg)
			if res.Err != nil {
				panic(res.Err)
			}
			fmt.Printf("  %-14s makespan %12v  blocks per node %v  reaction %v\n",
				policy.String()+":", res.Makespan, res.BlocksPerNode, res.ReactionTime(1))
		}
		fmt.Println()
	}
}
