// Quickstart: bring up a two-node simulated cluster, open a SocketVIA
// connection and a kernel-TCP connection, and compare a simple
// request/response exchange on both.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

func main() {
	for _, kind := range []core.Kind{core.KindTCP, core.KindSocketVIA} {
		fmt.Printf("== %s ==\n", kind)
		run(kind)
	}
}

func run(kind core.Kind) {
	// The simulated testbed: a kernel (virtual time), the cLAN-like
	// switch fabric, and two dual-CPU nodes.
	prof := core.CLANProfile()
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	cl.AddNode("client", cluster.DefaultConfig())
	cl.AddNode("server", cluster.DefaultConfig())

	// One sockets endpoint per node; the transport kind is the only
	// thing that changes between the two runs.
	fab := core.NewFabric(cl, kind, prof)

	listener := fab.Endpoint("server").Listen(80)
	k.Go("server", func(p *sim.Proc) {
		conn, err := listener.Accept(p)
		if err != nil {
			panic(err)
		}
		buf := make([]byte, 64)
		n, _ := conn.Recv(p, buf)
		fmt.Printf("  server got %q at t=%v\n", buf[:n], p.Now())
		conn.Send(p, []byte("hello back"))
		conn.Close(p)
	})

	k.Go("client", func(p *sim.Proc) {
		conn, err := fab.Endpoint("client").Dial(p, "server", 80)
		if err != nil {
			panic(err)
		}
		start := p.Now()
		conn.Send(p, []byte("hello"))
		buf := make([]byte, 64)
		n, _ := conn.RecvFull(p, buf[:10])
		fmt.Printf("  client got %q, round trip %v\n", buf[:n], p.Now()-start)
		conn.Close(p)
	})

	k.RunAll()
}
