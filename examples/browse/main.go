// Browse: a pathologist's interactive session over a digitized slide,
// with the Figure 1 block geometry made explicit.
//
// The slide is a 4096x4096 image stored as a grid of blocks. Every
// viewport move fetches whole blocks — including pixels outside the
// viewport (the paper's "unnecessary data"). The example serves the
// same session with coarse blocks (what TCP's bandwidth profile wants)
// and fine blocks (what SocketVIA affords), printing the per-action
// response time and the wasted bytes.
//
// Run with: go run ./examples/browse
package main

import (
	"fmt"

	"hpsockets/internal/core"
	"hpsockets/internal/sim"
	"hpsockets/internal/vizapp"
)

func main() {
	script := []vizapp.Interaction{
		vizapp.Open(),
		vizapp.Zoom(4),
		vizapp.Pan(256, 0),
		vizapp.Pan(0, 256),
		vizapp.Pan(-128, -128),
		vizapp.Zoom(2),
	}

	configs := []struct {
		label   string
		kind    core.Kind
		blockPx int
	}{
		{"TCP, 2048px blocks (4 MB chunks)", core.KindTCP, 2048},
		{"SocketVIA, 2048px blocks (4 MB chunks)", core.KindSocketVIA, 2048},
		{"SocketVIA, 256px blocks (64 KB chunks, repartitioned)", core.KindSocketVIA, 256},
	}

	for _, c := range configs {
		ds := vizapp.NewDataset(4096, 4096, 1, c.blockPx, c.blockPx)
		cfg := vizapp.DefaultPipelineConfig(c.kind, 0)
		cfg.ComputePerByte = 18 * sim.Nanosecond
		res := vizapp.RunSession(cfg, ds, script)
		if res.Err != nil {
			panic(res.Err)
		}
		fmt.Printf("== %s (%d blocks on the slide) ==\n", c.label, ds.Blocks())
		fmt.Printf("   %-16s %8s %12s %12s %14s\n", "action", "blocks", "fetched", "wasted", "response")
		for _, st := range res.Steps {
			fmt.Printf("   %-16s %8d %10.2fMB %10.2fMB %14v\n",
				st.Op.Describe(), st.Blocks,
				float64(st.Fetched)/(1<<20), float64(st.Wasted)/(1<<20), st.Response)
		}
		fmt.Println()
	}
}
