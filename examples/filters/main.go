// Filters: building a custom DataCutter filter group on the public
// runtime API — a three-stage text-processing pipeline with
// transparent copies and demand-driven scheduling, carrying real
// payload bytes end to end.
//
// A reader filter splits a document into lines, two transparent
// copies of a tokenizer filter uppercase them (data parallelism), and
// a collector reassembles the result in arrival order.
//
// Run with: go run ./examples/filters
package main

import (
	"fmt"
	"strings"

	"hpsockets/internal/cluster"
	"hpsockets/internal/core"
	"hpsockets/internal/datacutter"
	"hpsockets/internal/netsim"
	"hpsockets/internal/sim"
)

const document = `the challenging issues in supporting data intensive applications
include efficient movement of large volumes of data
and efficient coordination of data movement and processing
to achieve high performance with guarantees
and adaptability to heterogeneous environments`

// reader streams one line per buffer.
type reader struct{}

func (reader) Init(*datacutter.Context) error { return nil }
func (reader) Process(ctx *datacutter.Context) error {
	out := ctx.Output("lines")
	for i, line := range strings.Split(document, "\n") {
		buf := &datacutter.Buffer{Size: len(line), Data: []byte(line), Tag: int64(i)}
		if err := out.Write(ctx.Proc(), buf); err != nil {
			return err
		}
	}
	return out.EndOfWork(ctx.Proc())
}
func (reader) Finalize(*datacutter.Context) error { return nil }

// tokenizer uppercases each line, paying a per-byte compute cost.
type tokenizer struct{ copy int }

func (tokenizer) Init(*datacutter.Context) error { return nil }
func (t tokenizer) Process(ctx *datacutter.Context) error {
	in, out := ctx.Input("lines"), ctx.Output("tokens")
	for {
		b, ok := in.Read(ctx.Proc())
		if !ok {
			return out.EndOfWork(ctx.Proc())
		}
		ctx.Compute(sim.Time(b.Size) * 50) // 50 ns/byte of "parsing"
		up := []byte(strings.ToUpper(string(b.Data)))
		if err := out.Write(ctx.Proc(), &datacutter.Buffer{Size: len(up), Data: up, Tag: b.Tag}); err != nil {
			return err
		}
	}
}
func (tokenizer) Finalize(*datacutter.Context) error { return nil }

// collector gathers the processed lines.
type collector struct{ got map[int64]string }

func (c *collector) Init(*datacutter.Context) error { return nil }
func (c *collector) Process(ctx *datacutter.Context) error {
	in := ctx.Input("tokens")
	for {
		b, ok := in.Read(ctx.Proc())
		if !ok {
			return nil
		}
		c.got[b.Tag] = string(b.Data)
	}
}
func (c *collector) Finalize(*datacutter.Context) error { return nil }

func main() {
	prof := core.CLANProfile()
	k := sim.NewKernel()
	net := netsim.New(k, prof.Wire)
	cl := cluster.New(k, net)
	for _, n := range []string{"src", "w0", "w1", "dst"} {
		cl.AddNode(n, cluster.DefaultConfig())
	}
	fab := core.NewFabric(cl, core.KindSocketVIA, prof)
	rt := datacutter.NewRuntime(cl, fab)

	sink := &collector{got: map[int64]string{}}
	g := rt.Instantiate(datacutter.GroupSpec{
		Filters: []datacutter.FilterSpec{
			{Name: "reader", New: func(int) datacutter.Filter { return reader{} }, Placement: []string{"src"}},
			{Name: "tokenizer", New: func(c int) datacutter.Filter { return tokenizer{copy: c} }, Placement: []string{"w0", "w1"}},
			{Name: "collector", New: func(int) datacutter.Filter { return sink }, Placement: []string{"dst"}},
		},
		Streams: []datacutter.StreamSpec{
			{Name: "lines", From: "reader", To: "tokenizer", Policy: datacutter.DemandDriven},
			{Name: "tokens", From: "tokenizer", To: "collector"},
		},
	})
	g.Start(1)
	end := k.RunAll()
	if err := g.Err(); err != nil {
		panic(err)
	}

	fmt.Printf("processed %d lines across 2 tokenizer copies in %v (virtual):\n\n", len(sink.got), end)
	for i := 0; i < len(sink.got); i++ {
		fmt.Println(sink.got[int64(i)])
	}
}
