// Package repro's root benchmark harness: one benchmark per paper
// figure plus ablation benches for the design choices in DESIGN.md.
//
// Each figure benchmark regenerates the corresponding figure's series
// at reduced (Quick) repetition counts and reports its headline metric
// via b.ReportMetric; `go run ./cmd/figures` produces the full-scale
// tables. Simulated time is deterministic, so a single iteration is a
// complete, reproducible measurement.
package repro_test

import (
	"testing"

	"hpsockets/internal/core"
	"hpsockets/internal/experiments"
	"hpsockets/internal/sim"
	"hpsockets/internal/stats"
)

func quick() experiments.Options { return experiments.QuickOptions() }

// BenchmarkFig4aLatency regenerates Figure 4(a) and reports the
// 4-byte one-way latencies (us).
func BenchmarkFig4aLatency(b *testing.B) {
	o := quick()
	for i := 0; i < b.N; i++ {
		experiments.Fig4aLatency(o)
	}
	b.ReportMetric(experiments.VIALatency(4, o.MicroIters).Micros(), "via_us")
	b.ReportMetric(experiments.SocketsLatency(core.KindSocketVIA, 4, o.MicroIters).Micros(), "socketvia_us")
	b.ReportMetric(experiments.SocketsLatency(core.KindTCP, 4, o.MicroIters).Micros(), "tcp_us")
}

// BenchmarkFig4bBandwidth regenerates Figure 4(b) and reports the
// peak bandwidths (Mbps).
func BenchmarkFig4bBandwidth(b *testing.B) {
	o := quick()
	for i := 0; i < b.N; i++ {
		experiments.Fig4bBandwidth(o)
	}
	b.ReportMetric(experiments.VIABandwidth(64*1024, o.MicroMsgs), "via_mbps")
	b.ReportMetric(experiments.SocketsBandwidth(core.KindSocketVIA, 64*1024, o.MicroMsgs), "socketvia_mbps")
	b.ReportMetric(experiments.SocketsBandwidth(core.KindTCP, 64*1024, o.MicroMsgs), "tcp_mbps")
}

// benchFig7 reports the latency improvement of repartitioned SocketVIA
// over TCP at the paper's highest TCP-feasible update guarantee.
func benchFig7(b *testing.B, compute bool) {
	o := quick()
	var tcpUS, drUS float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig7(o, compute)
		// Find the first target where TCP has a point.
		for xi := range t.X {
			if !isNaN(t.Series[0].Y[xi]) {
				tcpUS, drUS = t.Series[0].Y[xi], t.Series[2].Y[xi]
				break
			}
		}
	}
	b.ReportMetric(tcpUS, "tcp_us")
	b.ReportMetric(drUS, "socketvia_dr_us")
	if drUS > 0 {
		b.ReportMetric(tcpUS/drUS, "improvement_x")
	}
}

// BenchmarkFig7aLatencyUnderUpdateGuarantee regenerates Figure 7(a).
func BenchmarkFig7aLatencyUnderUpdateGuarantee(b *testing.B) { benchFig7(b, false) }

// BenchmarkFig7bLatencyUnderUpdateGuarantee regenerates Figure 7(b)
// (with the 18 ns/byte computation).
func BenchmarkFig7bLatencyUnderUpdateGuarantee(b *testing.B) { benchFig7(b, true) }

// benchFig8 reports the update rates at the loosest latency guarantee.
func benchFig8(b *testing.B, compute bool) {
	o := quick()
	var tcp, dr float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig8(o, compute)
		tcp, dr = t.Series[0].Y[0], t.Series[2].Y[0]
	}
	b.ReportMetric(tcp, "tcp_ups")
	b.ReportMetric(dr, "socketvia_dr_ups")
}

// BenchmarkFig8aUpdatesUnderLatencyGuarantee regenerates Figure 8(a).
func BenchmarkFig8aUpdatesUnderLatencyGuarantee(b *testing.B) { benchFig8(b, false) }

// BenchmarkFig8bUpdatesUnderLatencyGuarantee regenerates Figure 8(b).
func BenchmarkFig8bUpdatesUnderLatencyGuarantee(b *testing.B) { benchFig8(b, true) }

// benchFig9 reports the response times at a 50/50 query mix with 64
// partitions.
func benchFig9(b *testing.B, compute bool) {
	o := quick()
	var tcpMS, svMS float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig9(o, compute)
		// Series order: sv noparts, sv 8, sv 64, tcp noparts, tcp 8, tcp 64.
		mid := len(t.X) / 2
		svMS, tcpMS = t.Series[2].Y[mid], t.Series[5].Y[mid]
	}
	b.ReportMetric(tcpMS, "tcp_ms")
	b.ReportMetric(svMS, "socketvia_ms")
}

// BenchmarkFig9aQueryMixResponse regenerates Figure 9(a).
func BenchmarkFig9aQueryMixResponse(b *testing.B) { benchFig9(b, false) }

// BenchmarkFig9bQueryMixResponse regenerates Figure 9(b).
func BenchmarkFig9bQueryMixResponse(b *testing.B) { benchFig9(b, true) }

// BenchmarkFig10RoundRobinReaction regenerates Figure 10 and reports
// the reaction-time ratio at heterogeneity factor 4.
func BenchmarkFig10RoundRobinReaction(b *testing.B) {
	o := quick()
	var sv, tcp float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig10(o)
		sv, tcp = t.Series[0].Y[1], t.Series[1].Y[1] // factor 4
	}
	b.ReportMetric(sv, "socketvia_us")
	b.ReportMetric(tcp, "tcp_us")
	if sv > 0 {
		b.ReportMetric(tcp/sv, "ratio_x")
	}
}

// BenchmarkFig11DemandDriven regenerates Figure 11 and reports the
// factor-8, 90%-probability execution times.
func BenchmarkFig11DemandDriven(b *testing.B) {
	o := quick()
	var sv, tcp float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig11(o)
		last := len(t.X) - 1
		sv, tcp = t.Series[2].Y[last], t.Series[5].Y[last]
	}
	b.ReportMetric(sv/1000, "socketvia_ms")
	b.ReportMetric(tcp/1000, "tcp_ms")
}

// BenchmarkPerfectPipelining regenerates the Section 5.2.3 block-size
// sweep and reports efficiency at the paper's chosen blocks.
func BenchmarkPerfectPipelining(b *testing.B) {
	o := quick()
	var sv, tcp float64
	for i := 0; i < b.N; i++ {
		sv = experiments.PipelineEfficiency(o, core.KindSocketVIA, experiments.PipeliningBlock(core.KindSocketVIA))
		tcp = experiments.PipelineEfficiency(o, core.KindTCP, experiments.PipeliningBlock(core.KindTCP))
	}
	b.ReportMetric(sv, "socketvia_eff_2K")
	b.ReportMetric(tcp, "tcp_eff_16K")
}

// BenchmarkFaultRecovery (E15) regenerates the fault family and
// reports the loss-recovery overhead at a 1e-3 drop rate (ratio of
// completion times, 16 KB chunks) plus the failover re-dispatch count
// at the mid-run crash point.
func BenchmarkFaultRecovery(b *testing.B) {
	o := quick()
	var xfer, fo *stats.Table
	for i := 0; i < b.N; i++ {
		xfer = experiments.FigFaultTransfer(o)
		fo = experiments.FigFaultFailover(o)
	}
	last := len(xfer.X) - 1 // highest drop rate
	// Series order: sv 16k us, sv 16k redials, sv 256k us, sv 256k
	// redials, then the same four for tcp.
	b.ReportMetric(xfer.Series[0].Y[last]/xfer.Series[0].Y[0], "socketvia_loss_slowdown_x")
	b.ReportMetric(xfer.Series[4].Y[last]/xfer.Series[4].Y[0], "tcp_loss_slowdown_x")
	b.ReportMetric(xfer.Series[1].Y[last], "socketvia_redials")
	// Failover series: sv us, sv redispatched, tcp us, tcp redispatched.
	mid := len(fo.X) / 2
	b.ReportMetric(fo.Series[1].Y[mid], "socketvia_redispatched")
	b.ReportMetric(fo.Series[3].Y[mid], "tcp_redispatched")
}

// BenchmarkAblationEagerChunkSize (A2) sweeps the SocketVIA eager
// chunk size.
func BenchmarkAblationEagerChunkSize(b *testing.B) {
	for _, chunk := range []int{2048, 4096, 8192, 16384} {
		chunk := chunk
		b.Run(byteLabel(chunk), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = experiments.AblationEagerChunk(chunk, 64*1024, 100)
			}
			b.ReportMetric(mbps, "Mbps")
		})
	}
}

// BenchmarkAblationCredits (A1) sweeps the SocketVIA credit count.
func BenchmarkAblationCredits(b *testing.B) {
	for _, credits := range []int{2, 4, 8, 16, 32} {
		credits := credits
		b.Run(intLabel(credits), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = experiments.AblationCredits(credits, 64*1024, 100)
			}
			b.ReportMetric(mbps, "Mbps")
		})
	}
}

// BenchmarkAblationRendezvous (A6) compares eager SocketVIA with the
// zero-copy RDMA rendezvous path (the paper's future-work push model).
func BenchmarkAblationRendezvous(b *testing.B) {
	for _, mode := range []struct {
		name      string
		threshold int
	}{{"eager", 0}, {"zerocopy", 16 * 1024}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var mbps, cpu float64
			for i := 0; i < b.N; i++ {
				mbps, cpu = experiments.AblationRendezvous(mode.threshold, 64*1024, 100)
			}
			b.ReportMetric(mbps, "Mbps")
			b.ReportMetric(cpu*100, "sender_cpu_pct")
		})
	}
}

// BenchmarkAblationTCPMSS (A3) sweeps the kernel path's MSS.
func BenchmarkAblationTCPMSS(b *testing.B) {
	for _, mss := range []int{536, 1460, 4312, 8960} {
		mss := mss
		b.Run(intLabel(mss), func(b *testing.B) {
			var mbps float64
			var lat sim.Time
			for i := 0; i < b.N; i++ {
				mbps, lat = experiments.AblationTCPMSS(mss, 64*1024, 100)
			}
			b.ReportMetric(mbps, "Mbps")
			b.ReportMetric(lat.Micros(), "latency_us")
		})
	}
}

// BenchmarkAblationTransparentCopies (A5) sweeps the pipeline's
// transparent copy count.
func BenchmarkAblationTransparentCopies(b *testing.B) {
	o := quick()
	for _, chains := range []int{1, 2, 3, 4} {
		chains := chains
		b.Run(intLabel(chains), func(b *testing.B) {
			var ups float64
			for i := 0; i < b.N; i++ {
				ups = experiments.AblationChains(o, core.KindSocketVIA, chains, 32*1024)
			}
			b.ReportMetric(ups, "updates_per_sec")
		})
	}
}

// BenchmarkAblationDemandWindow (A4) sweeps the demand-driven window.
func BenchmarkAblationDemandWindow(b *testing.B) {
	o := quick()
	for _, window := range []int{1, 2, 4, 8, 0} { // 0 = unbounded
		window := window
		b.Run(intLabel(window), func(b *testing.B) {
			var makespan sim.Time
			for i := 0; i < b.N; i++ {
				makespan = experiments.AblationDemandWindow(o, core.KindTCP, window)
			}
			b.ReportMetric(makespan.Millis(), "makespan_ms")
		})
	}
}

// Allocation budgets for the two headline micro-benchmarks, measured
// with testing.AllocsPerRun at the ladder-queue/zero-copy change (the
// simulation is deterministic, so the counts are stable run to run).
// The guard fails when a change regresses either figure by more than
// 5% — re-baseline these consciously, with the BENCH_*.json trail,
// never by bumping the number to silence the test.
const (
	fig4aAllocsBudget = 19234
	fig4bAllocsBudget = 84833
	allocsSlack       = 1.05
)

// TestFigureAllocsRegression is the allocation regression guard for
// the figure hot paths.
func TestFigureAllocsRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard runs the full quick figure micro pair")
	}
	o := quick()
	for _, c := range []struct {
		name   string
		budget float64
		fn     func()
	}{
		{"Fig4aLatency", fig4aAllocsBudget, func() { experiments.Fig4aLatency(o) }},
		{"Fig4bBandwidth", fig4bAllocsBudget, func() { experiments.Fig4bBandwidth(o) }},
	} {
		allocs := testing.AllocsPerRun(3, c.fn)
		limit := c.budget * allocsSlack
		if allocs > limit {
			t.Errorf("%s allocates %.0f per run, over the %.0f budget (+5%% slack = %.0f): an allocation regression in the kernel, queue hand-off or wire path",
				c.name, allocs, c.budget, limit)
		} else {
			t.Logf("%s: %.0f allocs per run (budget %.0f)", c.name, allocs, c.budget)
		}
	}
}

func isNaN(f float64) bool { return f != f }

func intLabel(n int) string {
	digits := "0123456789"
	if n == 0 {
		return "0"
	}
	var out []byte
	for n > 0 {
		out = append([]byte{digits[n%10]}, out...)
		n /= 10
	}
	return string(out)
}

func byteLabel(n int) string { return intLabel(n/1024) + "KB" }
