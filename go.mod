module hpsockets

go 1.22
